"""Differential suite: bitset vs reference preference backends.

The bitset backend (:class:`repro.core.preference.BitsetPreferenceGraph`)
is an optimization of the reference implementation, not a
reinterpretation — every observable it exposes must match the reference
bit for bit. These properties replay random answer histories (edges,
ties, contradictions under both :class:`ContradictionPolicy` values)
into both backends and compare the complete derivable state, then pin
full CrowdSky runs (all three schedulers) to identical question counts,
rounds and skylines under either backend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CrowdSkyConfig, crowdsky, parallel_dset, parallel_sl
from repro.core.preference import (
    BitsetPreferenceGraph,
    ContradictionPolicy,
    PreferenceGraph,
    PreferenceSystem,
    ReferencePreferenceGraph,
    default_backend,
)
from repro.crowd.questions import Preference
from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import CrowdSkyError, PreferenceConflictError
from tests.strategies import (
    DIFFERENTIAL_SETTINGS,
    ROBUSTNESS_SETTINGS,
    answer_sequences,
    consistent_answer_sequences,
    small_relations,
)

pytestmark = pytest.mark.pref

BACKENDS = ("reference", "bitset")


def graph_state(graph, n):
    """Every observable of a preference graph, as comparable data."""
    return {
        "relations": [
            [graph.relation(u, v) for v in range(n)] for u in range(n)
        ],
        "classes": [graph.class_of(u) for u in range(n)],
        "edges": sorted(graph.edges()),
        "rejected": graph.rejected_answers,
        "version": graph.version,
    }


def replay(graph, events):
    """Replay an answer history; returns the acceptance bitmap."""
    return [graph.add_answer(u, v, answer) for u, v, _, answer in events]


class TestGraphDifferential:
    @settings(
        parent=DIFFERENTIAL_SETTINGS,
    )
    @given(answer_sequences(max_attributes=1))
    def test_keep_first_state_identical(self, sequence):
        """Random histories (contradictions included) yield identical
        acceptance decisions and identical derivable state."""
        n, _, events = sequence
        reference = ReferencePreferenceGraph(n)
        bitset = BitsetPreferenceGraph(n)
        assert replay(reference, events) == replay(bitset, events)
        assert graph_state(reference, n) == graph_state(bitset, n)

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(answer_sequences(max_attributes=1))
    def test_raise_policy_rejects_at_same_event(self, sequence):
        """Under RAISE both backends throw on exactly the same event,
        leaving identical pre-conflict state behind."""
        n, _, events = sequence
        reference = ReferencePreferenceGraph(
            n, policy=ContradictionPolicy.RAISE
        )
        bitset = BitsetPreferenceGraph(n, policy=ContradictionPolicy.RAISE)
        failed_at = {}
        for name, graph in (("reference", reference), ("bitset", bitset)):
            for index, (u, v, _, answer) in enumerate(events):
                try:
                    graph.add_answer(u, v, answer)
                except PreferenceConflictError:
                    failed_at[name] = index
                    break
        assert failed_at.get("reference") == failed_at.get("bitset")
        assert graph_state(reference, n) == graph_state(bitset, n)

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(consistent_answer_sequences())
    def test_consistent_histories_never_reject(self, sequence):
        """Histories drawn from a latent weak order are accepted whole
        by both backends, which then agree with the latent order."""
        n, _, events, ranks = sequence
        for backend in BACKENDS:
            graph = PreferenceGraph(
                n, policy=ContradictionPolicy.RAISE, backend=backend
            )
            for u, v, _, answer in events:
                assert graph.add_answer(u, v, answer)
            assert graph.rejected_answers == 0
            for u in range(n):
                for v in range(n):
                    rel = graph.relation(u, v)
                    if u != v and rel is Preference.LEFT:
                        assert ranks[u] < ranks[v]
                    elif u != v and rel is Preference.RIGHT:
                        assert ranks[u] > ranks[v]
                    elif u != v and rel is Preference.EQUAL:
                        assert ranks[u] == ranks[v]

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(answer_sequences(max_attributes=2))
    def test_system_predicates_identical(self, sequence):
        """AC-level predicates (the pruning machinery's inputs) agree on
        every ordered pair, as does the batched resolve_pairs view."""
        n, num_attributes, events = sequence
        systems = {
            backend: PreferenceSystem(n, num_attributes, backend=backend)
            for backend in BACKENDS
        }
        for u, v, attribute, answer in events:
            accepted = {
                backend: system.add_answer(u, v, attribute, answer)
                for backend, system in systems.items()
            }
            assert accepted["reference"] == accepted["bitset"]
        ref, bit = systems["reference"], systems["bitset"]
        pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        assert ref.resolve_pairs(pairs) == bit.resolve_pairs(pairs)
        for u, v in pairs:
            assert ref.ac_dominates(u, v) == bit.ac_dominates(u, v)
            assert ref.ac_equal(u, v) == bit.ac_equal(u, v)
            assert ref.weakly_prefers_all(u, v) == bit.weakly_prefers_all(u, v)
            assert ref.cannot_dominate(u, v) == bit.cannot_dominate(u, v)
            assert ref.unknown_attributes(u, v) == bit.unknown_attributes(u, v)
        assert ref.total_rejected() == bit.total_rejected()
        members = list(range(0, n, 2)) + list(range(1, n, 2))
        assert ref.sky_ac(members) == bit.sky_ac(members)
        assert ref.sky_ac(list(range(n))) == bit.sky_ac(list(range(n)))


class TestEndToEndDifferential:
    """Full CrowdSky runs must be bit-identical across backends."""

    @settings(parent=ROBUSTNESS_SETTINGS)
    @given(
        seed=st.integers(0, 10_000),
        distribution=st.sampled_from(list(Distribution)),
        num_crowd=st.integers(1, 2),
    )
    def test_seeded_instances_identical(self, seed, distribution, num_crowd):
        relation = generate_synthetic(
            28, 2, num_crowd, distribution, seed=seed
        )
        for scheduler in (crowdsky, parallel_dset, parallel_sl):
            results = {
                backend: scheduler(
                    relation, config=CrowdSkyConfig(backend=backend)
                )
                for backend in BACKENDS
            }
            ref, bit = results["reference"], results["bitset"]
            assert ref.skyline == bit.skyline
            assert ref.stats.questions == bit.stats.questions
            assert ref.stats.rounds == bit.stats.rounds
            assert ref.rejected_answers == bit.rejected_answers
            assert ref.question_log == bit.question_log

    @settings(parent=ROBUSTNESS_SETTINGS, max_examples=15)
    @given(relation=small_relations())
    def test_arbitrary_relations_identical(self, relation):
        """Grid relations with ties/duplicates — the degenerate-case
        preprocessing and tie-merge paths — agree end to end."""
        results = {
            backend: crowdsky(
                relation, config=CrowdSkyConfig(backend=backend)
            )
            for backend in BACKENDS
        }
        ref, bit = results["reference"], results["bitset"]
        assert ref.skyline == bit.skyline
        assert ref.stats.questions == bit.stats.questions
        assert ref.stats.rounds == bit.stats.rounds
        assert ref.question_log == bit.question_log


class TestBackendSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREF_BACKEND", raising=False)
        assert default_backend() == "bitset"
        assert isinstance(PreferenceGraph(4), BitsetPreferenceGraph)

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREF_BACKEND", "reference")
        assert default_backend() == "reference"
        assert isinstance(PreferenceGraph(4), ReferencePreferenceGraph)
        system = PreferenceSystem(4, 1)
        assert system.backend == "reference"
        assert isinstance(system.graphs[0], ReferencePreferenceGraph)

    def test_constructor_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREF_BACKEND", "reference")
        assert isinstance(
            PreferenceGraph(4, backend="bitset"), BitsetPreferenceGraph
        )

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(CrowdSkyError):
            PreferenceGraph(4, backend="quantum")
        monkeypatch.setenv("REPRO_PREF_BACKEND", "quantum")
        with pytest.raises(CrowdSkyError):
            default_backend()

    def test_config_backend_threads_through(self, small_independent):
        result = crowdsky(
            small_independent, config=CrowdSkyConfig(backend="reference")
        )
        baseline = crowdsky(
            small_independent, config=CrowdSkyConfig(backend="bitset")
        )
        assert result.skyline == baseline.skyline
        assert result.stats.questions == baseline.stats.questions

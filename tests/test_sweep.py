"""Sweep engine suite: parallel/serial equivalence, the result cache,
cross-process obs merging, and the mixed-batch single-round fix.

Run via ``make test-sweep`` (marker: ``sweep``).
"""

import json

import pytest

from repro.core.engine import ask_batch, build_context
from repro.core.tasks import MultiwayRequest, PairRequest
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import MultiwayQuestion
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.sweep import (
    CACHE_VERSION,
    Cell,
    SweepCache,
    code_fingerprint,
    resolve_cache,
    resolve_jobs,
    run_cells,
)
from repro.obs import MetricsRegistry, Tracer, observe
from repro.obs.metrics import ROUND_SIZE, SWEEP_CELLS
from repro.obs.schema import check_metrics_consistency, validate_events
from tests.conftest import make_relation

pytestmark = pytest.mark.sweep

#: Cheap cell runner for cache/engine tests (resolvable by workers).
ECHO = "tests.test_sweep:echo_cell"


def echo_cell(config, seed):
    return {"value": int(config["x"]) * 10 + seed}


class TestParallelSerialEquivalence:
    """The headline guarantee: ``--jobs N`` never changes the rows."""

    @pytest.mark.parametrize("experiment_id", available_experiments())
    def test_parallel_rows_match_serial(self, experiment_id):
        serial = run_experiment(experiment_id, scale="smoke", jobs=1)
        parallel = run_experiment(experiment_id, scale="smoke", jobs=4)
        assert parallel.rows == serial.rows
        assert list(parallel.columns) == list(serial.columns)

    def test_cached_rows_match_fresh(self, tmp_path):
        cache = SweepCache(tmp_path)
        fresh = run_experiment("fig6a", scale="smoke", cache=cache)
        assert cache.stats.stored > 0
        warm = run_experiment("fig6a", scale="smoke", cache=cache)
        assert cache.stats.hits == cache.stats.stored
        assert warm.rows == fresh.rows


class TestCell:
    def test_config_roundtrip_and_run(self):
        cell = Cell.make("t", ECHO, {"x": 3, "a": 1}, 7)
        assert cell.config_dict() == {"x": 3, "a": 1}
        assert cell.run() == {"value": 37}

    def test_malformed_runner_rejected(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            Cell.make("t", "no-colon", {}, 0).resolve_runner()
        with pytest.raises(ExperimentError):
            Cell.make("t", "tests.test_sweep:missing", {}, 0).run()


class TestSweepCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell.make("t", ECHO, {"x": 1}, 0)
        hit, _ = cache.get(cell)
        assert not hit
        cache.put(cell, {"value": 10})
        hit, payload = cache.get(cell)
        assert hit and payload == {"value": 10}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stored == 1

    def test_key_is_content_addressed(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = Cell.make("fig6a", ECHO, {"x": 1}, 0)
        # The experiment id labels traces only — cells shared between
        # experiments share entries.
        assert cache.key(base) == cache.key(
            Cell.make("fig6b", ECHO, {"x": 1}, 0)
        )
        assert cache.key(base) != cache.key(
            Cell.make("fig6a", ECHO, {"x": 2}, 0)
        )
        assert cache.key(base) != cache.key(
            Cell.make("fig6a", ECHO, {"x": 1}, 1)
        )
        assert cache.key(base) != cache.key(
            Cell.make("fig6a", "tests.test_sweep:other", {"x": 1}, 0)
        )

    def test_fingerprint_invalidates(self, tmp_path):
        cell = Cell.make("t", ECHO, {"x": 1}, 0)
        old = SweepCache(tmp_path, fingerprint="old-code")
        old.put(cell, {"value": 10})
        new = SweepCache(tmp_path, fingerprint="new-code")
        hit, _ = new.get(cell)
        assert not hit  # a source edit must never serve stale cells

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell.make("t", ECHO, {"x": 2}, 1)
        cache.put(cell, {"value": 21})
        cache.entry_path(cell).write_text("{corrupt json")
        hit, _ = cache.get(cell)
        assert not hit
        assert cache.stats.corrupt == 1
        assert not cache.entry_path(cell).exists()  # healed
        results = run_cells([cell], cache=cache)
        assert results[cell] == {"value": 21}
        hit, payload = cache.get(cell)
        assert hit and payload == {"value": 21}

    def test_version_mismatch_treated_as_corrupt(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell.make("t", ECHO, {"x": 5}, 0)
        cache.put(cell, {"value": 50})
        path = cache.entry_path(cell)
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        hit, _ = cache.get(cell)
        assert not hit
        assert cache.stats.corrupt == 1

    def test_code_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_resolvers(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True).directory.name == "sweeps"
        assert resolve_cache(tmp_path).directory == tmp_path
        cache = SweepCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-3) == 1


class TestRunCells:
    def test_duplicate_cells_execute_once(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell.make("t", ECHO, {"x": 1}, 0)
        results = run_cells([cell, cell, cell], cache=cache)
        assert results == {cell: {"value": 10}}
        assert cache.stats.stored == 1

    def test_parallel_matches_serial(self):
        cells = [Cell.make("t", ECHO, {"x": x}, s)
                 for x in (1, 2) for s in (0, 1)]
        assert run_cells(cells, jobs=4) == run_cells(cells, jobs=1)

    def test_cache_serves_across_calls(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell.make("t", ECHO, {"x": 9}, 3)
        first = run_cells([cell], cache=cache)
        second = run_cells([cell], jobs=4, cache=cache)
        assert first == second
        assert cache.stats.hits == 1


class TestObsMerging:
    def test_parallel_trace_and_metrics_consistent(self):
        with observe() as o:
            run_experiment("fig6a", scale="smoke", jobs=2)
        assert validate_events(o.tracer.events) == []
        o.finalize()
        assert check_metrics_consistency(
            o.tracer.events, o.metrics.snapshot()
        ) == []
        assert o.metrics.value(SWEEP_CELLS, status="computed") == 4

    def test_parallel_metrics_equal_serial_metrics(self):
        def deterministic(snapshot):
            # Phase timers measure wall clock; everything else is
            # seeded and must match across execution strategies.
            return {
                key: value
                for key, value in snapshot.items()
                if not key.startswith("crowdsky_phase_seconds")
            }

        with observe() as serial:
            run_experiment("fig6a", scale="smoke", jobs=1)
        with observe() as parallel:
            run_experiment("fig6a", scale="smoke", jobs=2)
        assert deterministic(parallel.metrics.snapshot()) == deterministic(
            serial.metrics.snapshot()
        )

    def test_warm_cache_trace_stays_consistent(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_experiment("fig6a", scale="smoke", cache=cache)
        with observe() as o:
            run_experiment("fig6a", scale="smoke", cache=cache)
        names = [e["name"] for e in o.tracer.events]
        assert names.count("sweep.cached") == 4
        assert "crowd.round" not in names  # skipped work is not replayed
        assert validate_events(o.tracer.events) == []
        o.finalize()
        assert check_metrics_consistency(
            o.tracer.events, o.metrics.snapshot()
        ) == []
        assert o.metrics.value(SWEEP_CELLS, status="cached") == 4

    def test_metrics_registry_absorb(self):
        child = MetricsRegistry()
        child.counter("c_total", x="1").inc(3)
        child.gauge("g").set(2.5)
        child.histogram(ROUND_SIZE).observe(5)
        parent = MetricsRegistry()
        parent.absorb(child.dump())
        parent.absorb(child.dump())
        assert parent.value("c_total", x="1") == 6
        assert parent.value("g") == 5.0
        histogram = parent.histogram(ROUND_SIZE)
        assert histogram.count == 2
        assert histogram.sum == 10

    def test_tracer_absorb_remaps_spans(self):
        child = Tracer()
        with child.span("run", algorithm="x"):
            child.event("engine.visible_seed", edges=0)
        parent = Tracer()
        with parent.span("outer") as outer:
            parent.absorb(child.events)
        assert validate_events(parent.events) == []
        absorbed_start = [
            e for e in parent.events
            if e["name"] == "run" and e["kind"] == "span_start"
        ]
        assert absorbed_start[0]["span"] != outer.span_id
        assert absorbed_start[0]["parent"] == outer.span_id


class TestMixedBatchSingleRound:
    """Regression: a mixed pairwise+multiway batch costs ONE round."""

    def _context(self):
        relation = make_relation(
            [(1, 6), (2, 5), (3, 4), (4, 3), (5, 2), (6, 1)],
            [(1,), (2,), (3,), (4,), (5,), (6,)],
        )
        return build_context(relation, crowd=SimulatedCrowd(relation))

    def test_mixed_batch_counts_one_round(self):
        context = self._context()
        before = context.crowd.stats.rounds
        ask_batch(
            context,
            [PairRequest(0, 1), MultiwayRequest((2, 3, 4))],
        )
        stats = context.crowd.stats
        assert stats.rounds == before + 1
        # 1 pairwise micro-question (|AC| = 1) + 1 m-ary task share a slot.
        assert stats.round_sizes[-1] == 2

    def test_multiway_only_batch_is_its_own_round(self):
        context = self._context()
        before = context.crowd.stats.rounds
        ask_batch(context, [MultiwayRequest((0, 1, 2))])
        assert context.crowd.stats.rounds == before + 1

    def test_same_round_without_prior_round_opens_one(self):
        relation = make_relation(
            [(1, 2), (2, 1), (3, 3)], [(1,), (2,), (3,)]
        )
        crowd = SimulatedCrowd(relation)
        crowd.ask_multiway_round(
            [MultiwayQuestion((0, 1, 2))], same_round=True
        )
        assert crowd.stats.rounds == 1
        assert crowd.stats.round_sizes == [1]

    def test_merged_round_trace_and_metrics_consistent(self):
        with observe() as o:
            context = self._context()
            ask_batch(
                context,
                [PairRequest(0, 1), MultiwayRequest((2, 3, 4))],
            )
        names = [e["name"] for e in o.tracer.events]
        assert "crowd.round_merged" in names
        assert validate_events(o.tracer.events) == []
        o.finalize()
        assert check_metrics_consistency(
            o.tracer.events, o.metrics.snapshot()
        ) == []

    def test_hit_ledger_merges_same_round(self):
        from repro.crowd.hits import HitLedger

        relation = make_relation(
            [(1, 6), (2, 5), (3, 4), (4, 3), (5, 2), (6, 1)],
            [(1,), (2,), (3,), (4,), (5,), (6,)],
        )
        ledger = HitLedger(seconds_per_hit=60.0, seed=0)
        crowd = SimulatedCrowd(relation, ledger=ledger)
        context = build_context(relation, crowd=crowd)
        ask_batch(
            context,
            [PairRequest(0, 1), MultiwayRequest((2, 3, 4))],
        )
        # Both postings landed in the same ledger round.
        assert len(ledger.rounds()) == 1


class TestCliFlags:
    def test_run_with_jobs_and_cache_dir(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cache_dir = tmp_path / "cache"
        assert main([
            "run", "table1", "--scale", "smoke",
            "--jobs", "2", "--cache-dir", str(cache_dir),
        ]) == 0
        assert any(cache_dir.rglob("*.json"))
        first = capsys.readouterr().out
        assert main([
            "run", "table1", "--scale", "smoke",
            "--cache-dir", str(cache_dir),
        ]) == 0
        assert capsys.readouterr().out == first  # warm == cold output

    def test_run_no_cache(self, capsys):
        from repro.experiments.cli import main

        assert main(
            ["run", "table1", "--scale", "smoke", "--no-cache"]
        ) == 0
        assert "table1" in capsys.readouterr().out.lower()

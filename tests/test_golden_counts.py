"""Golden regression: question/round/skyline counts must not drift.

An optimized preference closure is exactly the kind of change that
silently corrupts question counts — the algorithm still returns the
right skyline but stops matching the paper's cost accounting. This
suite replays a small seeded matrix of (dataset × scheduler × backend)
and compares every case against ``tests/fixtures/golden_counts.json``
exactly. After an *intentional* behaviour change, regenerate with
``make regen-golden`` and commit the diff.
"""

import json

import pytest

from tests.regen_golden import (
    BACKENDS,
    GOLDEN_PATH,
    GOLDEN_SHARDS,
    SCHEDULERS,
    datasets,
    run_case,
)

pytestmark = pytest.mark.pref


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        "missing golden fixture — run `make regen-golden` and commit "
        f"{GOLDEN_PATH}"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_datasets():
    return datasets()


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize(
    "dataset_name",
    ["toy_fig1", "ind_n40", "ant_n36", "cor_n40", "ind_ac2_n30"],
)
def test_counts_match_golden(
    golden, golden_datasets, dataset_name, scheduler_name
):
    key = f"{dataset_name}/{scheduler_name}"
    assert key in golden, f"missing golden case {key} — run `make regen-golden`"
    relation = golden_datasets[dataset_name]
    for backend in BACKENDS:
        actual = run_case(relation, scheduler_name, backend)
        assert actual == golden[key][backend], (
            f"drift in {key} [{backend}]: got {actual}, golden "
            f"{golden[key][backend]} — if intentional, run `make "
            f"regen-golden` and commit the updated fixture"
        )


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("dataset_name", ["toy_fig1", "ant_n36"])
def test_sharded_counts_match_golden(
    golden, golden_datasets, dataset_name, scheduler_name
):
    """Question/HIT counts are pinned for the sharded machine phase
    too, not just skyline membership (docs/sharding.md)."""
    key = f"{dataset_name}/{scheduler_name}@shards{GOLDEN_SHARDS}"
    assert key in golden, f"missing golden case {key} — run `make regen-golden`"
    relation = golden_datasets[dataset_name]
    for backend in BACKENDS:
        actual = run_case(
            relation, scheduler_name, backend, shards=GOLDEN_SHARDS
        )
        assert actual == golden[key][backend], (
            f"drift in {key} [{backend}] — if intentional, run `make "
            f"regen-golden` and commit the updated fixture"
        )


def test_golden_backends_agree(golden):
    """The committed fixture itself must be backend-consistent."""
    for key, per_backend in golden.items():
        for backend in BACKENDS:
            assert per_backend[backend] == per_backend["reference"], (
                f"{key} [{backend}]"
            )


def test_golden_sharded_equals_serial(golden):
    """The committed fixture itself must be shard-consistent: every
    ``@shards`` entry equals its serial counterpart byte-for-byte."""
    sharded_keys = [key for key in golden if "@shards" in key]
    assert sharded_keys, "no sharded cases — run `make regen-golden`"
    for key in sharded_keys:
        serial_key = key.split("@", 1)[0]
        assert golden[key] == golden[serial_key], key

"""Perf smoke: the bitset closure backend must never be slower.

A scaled-down replay (n=128) of the ``benchmarks/closure_cases``
workloads, timed with best-of-3 on both backends. At this size the
bitset backend wins every mix by well over 2x on an idle machine, so
asserting plain "not slower" leaves ample headroom for CI noise while
still catching a pathological regression (e.g. reintroducing a
whole-cache invalidation or an accidental O(n) query path).

Run via ``make test-perf-core``. The full-size (n=512) numbers live in
``benchmarks/baselines/closure_n512.json``.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from closure_cases import make_workloads, run_workload  # noqa: E402

pytestmark = [pytest.mark.perf, pytest.mark.pref]

SMOKE_N = 128
WORKLOADS = make_workloads(SMOKE_N)


def _best_of(ops, backend: str, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_workload(ops, SMOKE_N, backend)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_numpy_checksum_matches_reference(workload):
    """The numpy backend computes identical relations on every mix.

    No timing assertion at this size: the packed-bit broadcast pays a
    fixed numpy dispatch cost per *scalar* op, which only amortizes once
    the bulk kernels come into play (the `crowd-scale` suite is where
    the numpy backend's speedup is measured and pinned)."""
    ops = WORKLOADS[workload]
    assert run_workload(ops, SMOKE_N, "numpy") == run_workload(
        ops, SMOKE_N, "reference"
    ), f"numpy backend disagrees on {workload}"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_bitset_not_slower_than_reference(workload):
    ops = WORKLOADS[workload]
    assert run_workload(ops, SMOKE_N, "reference") == run_workload(
        ops, SMOKE_N, "bitset"
    ), f"backends disagree on {workload}"
    reference = _best_of(ops, "reference")
    bitset = _best_of(ops, "bitset")
    assert bitset <= reference, (
        f"bitset backend slower than reference on {workload}: "
        f"{bitset * 1000:.2f}ms vs {reference * 1000:.2f}ms"
    )


def _realloc_dominance_matrix(data, chunk_size=64):
    """The pre-hoisting kernel: fresh comparison buffers every chunk.

    Kept here (not in the library) purely as the perf yardstick for
    the buffer-reuse fix in ``repro.skyline.dominance``.
    """
    import numpy as np

    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    result = np.zeros((n, n), dtype=bool)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        block = data[start:stop, None, :]
        le = np.all(block <= data[None, :, :], axis=2)
        lt = np.any(block < data[None, :, :], axis=2)
        result[start:stop] = le & lt
    return result


def test_dominance_matrix_buffer_hoisting_not_slower():
    """Perf smoke for the hoisted comparison buffers: the shipped
    kernel must match the re-allocating variant bit-for-bit and not be
    meaningfully slower (the 1.15x slack absorbs CI noise; on an idle
    machine the hoisted kernel wins)."""
    import numpy as np

    from repro.skyline.dominance import dominance_matrix

    data = np.random.default_rng(12).random((1024, 4))
    assert np.array_equal(
        dominance_matrix(data, chunk_size=64),
        _realloc_dominance_matrix(data),
    )

    def best(kernel, repeats=5):
        result = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            kernel(data, chunk_size=64)
            result = min(result, time.perf_counter() - start)
        return result

    hoisted = best(dominance_matrix)
    realloc = best(_realloc_dominance_matrix)
    assert hoisted <= realloc * 1.15, (
        f"hoisted dominance kernel slower than the re-allocating one: "
        f"{hoisted * 1000:.2f}ms vs {realloc * 1000:.2f}ms"
    )


def test_committed_baseline_shows_speedup():
    """The committed n=512 baseline must document ≥3x aggregate."""
    import json

    baseline_path = (
        Path(__file__).parent.parent
        / "benchmarks"
        / "baselines"
        / "closure_n512.json"
    )
    assert baseline_path.exists(), (
        "missing baseline — run `python benchmarks/record_closure_baseline.py`"
    )
    baseline = json.loads(baseline_path.read_text())
    assert baseline["n"] == 512
    assert baseline["aggregate_speedup"] >= 3.0
    for name, row in baseline["workloads"].items():
        assert row["speedup"] >= 1.0, f"{name} regressed in the baseline"

"""Perf smoke: the bitset closure backend must never be slower.

A scaled-down replay (n=128) of the ``benchmarks/closure_cases``
workloads, timed with best-of-3 on both backends. At this size the
bitset backend wins every mix by well over 2x on an idle machine, so
asserting plain "not slower" leaves ample headroom for CI noise while
still catching a pathological regression (e.g. reintroducing a
whole-cache invalidation or an accidental O(n) query path).

Run via ``make test-perf-core``. The full-size (n=512) numbers live in
``benchmarks/baselines/closure_n512.json``.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from closure_cases import make_workloads, run_workload  # noqa: E402

pytestmark = [pytest.mark.perf, pytest.mark.pref]

SMOKE_N = 128
WORKLOADS = make_workloads(SMOKE_N)


def _best_of(ops, backend: str, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_workload(ops, SMOKE_N, backend)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_bitset_not_slower_than_reference(workload):
    ops = WORKLOADS[workload]
    assert run_workload(ops, SMOKE_N, "reference") == run_workload(
        ops, SMOKE_N, "bitset"
    ), f"backends disagree on {workload}"
    reference = _best_of(ops, "reference")
    bitset = _best_of(ops, "bitset")
    assert bitset <= reference, (
        f"bitset backend slower than reference on {workload}: "
        f"{bitset * 1000:.2f}ms vs {reference * 1000:.2f}ms"
    )


def test_committed_baseline_shows_speedup():
    """The committed n=512 baseline must document ≥3x aggregate."""
    import json

    baseline_path = (
        Path(__file__).parent.parent
        / "benchmarks"
        / "baselines"
        / "closure_n512.json"
    )
    assert baseline_path.exists(), (
        "missing baseline — run `python benchmarks/record_closure_baseline.py`"
    )
    baseline = json.loads(baseline_path.read_text())
    assert baseline["n"] == 512
    assert baseline["aggregate_speedup"] >= 3.0
    for name, row in baseline["workloads"].items():
        assert row["speedup"] >= 1.0, f"{name} regressed in the baseline"

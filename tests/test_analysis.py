"""Tests for the ``repro.analysis`` invariant linter.

Covers, per the linter contract (docs/static-analysis.md):

* every rule family fires on a bad fixture and stays quiet on a good
  one (determinism RA001-RA003, layering RA004, obs-schema RA005-RA007,
  cache-purity RA008-RA009, hygiene RA010-RA011, persistence RA012);
* inline ``# repro: noqa`` suppression semantics;
* baseline round-trip: write -> load -> apply yields a clean gate,
  TODO rationales and stale entries fail it;
* JSON output document shape of the CLI;
* the self-clean gate: the repo's own ``src/`` tree is clean modulo
  the committed ``analysis-baseline.json``;
* a Hypothesis property: the linter never crashes on arbitrary
  syntactically-valid modules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import (
    AnalysisConfig,
    SourceModule,
    all_rules,
    analyze_modules,
    analyze_paths,
    apply_baseline,
    entries_from_findings,
    get_rule,
    load_baseline,
    save_baseline,
)
from repro.analysis.baseline import TODO_RATIONALE, BaselineEntry
from repro.analysis.cli import main
from repro.analysis.engine import module_name_for
from tests.strategies import module_names, python_modules

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A minimal schema module mirroring repro.obs.schema's registry shape.
SCHEMA_SOURCE = """\
EVENT_ATTRS = {
    "crowd.round": {"round": (int,)},
    "sweep.cached": {},
}
"""

#: A minimal metrics module with one canonical constant.
METRICS_SOURCE = """\
CROWD_ROUNDS = "crowdsky_rounds_total"
"""


def mod(name: str, source: str) -> SourceModule:
    path = name.replace(".", "/") + ".py"
    return SourceModule.parse(name, source, path)


def run(*modules: SourceModule, select=None):
    return analyze_modules(list(modules), AnalysisConfig(), select)


def codes(findings):
    return sorted({f.code for f in findings})


# -- registry ----------------------------------------------------------------


def test_registry_lists_all_rules():
    rules = all_rules()
    got = [rule.code for rule in rules]
    assert got == sorted(got)
    assert got == [f"RA{n:03d}" for n in range(1, 17)]
    families = {rule.family for rule in rules}
    assert {
        "determinism", "layering", "obs-schema", "cache-purity",
        "exception-hygiene", "persistence",
    } <= families
    assert get_rule("RA004").family == "layering"
    assert get_rule("RA999") is None


# -- determinism (RA001-RA003) ----------------------------------------------


def test_wall_clock_fires_in_deterministic_scope():
    bad = mod(
        "repro.core.badmod",
        "import time\n\ndef f():\n    return time.time()\n",
    )
    assert codes(run(bad)) == ["RA001"]


def test_wall_clock_quiet_on_monotonic_and_outside_scope():
    good = mod(
        "repro.core.goodmod",
        "import time\n\ndef f():\n    return time.perf_counter_ns()\n",
    )
    obs = mod(
        "repro.obs.clockmod",
        "import time\n\ndef f():\n    return time.time()\n",
    )
    assert run(good) == []
    assert run(obs) == []


def test_unseeded_random_fires_and_seeded_is_quiet():
    bad = mod(
        "repro.experiments.badrng",
        "import random\nimport numpy as np\n\n"
        "def f():\n"
        "    a = random.random()\n"
        "    return a + np.random.default_rng().integers(10)\n",
    )
    found = run(bad)
    assert codes(found) == ["RA002"]
    assert len(found) == 2

    good = mod(
        "repro.experiments.goodrng",
        "import random\nimport numpy as np\n\n"
        "def f(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    local = random.Random(seed)\n"
        "    return rng.integers(10) + local.randrange(10)\n",
    )
    assert run(good) == []


def test_ordering_hazard_fires_on_set_iteration_and_listdir():
    bad = mod(
        "repro.crowd.badorder",
        "import os\n\n"
        "def f(items):\n"
        "    seen = set(items)\n"
        "    for x in seen:\n"
        "        print(x)\n"
        "    return os.listdir('.')\n",
    )
    assert codes(run(bad)) == ["RA003"]
    assert len(run(bad)) == 2


def test_ordering_hazard_quiet_when_sorted():
    good = mod(
        "repro.crowd.goodorder",
        "import os\n\n"
        "def f(items):\n"
        "    seen = set(items)\n"
        "    for x in sorted(seen):\n"
        "        print(x)\n"
        "    return sorted(os.listdir('.'))\n",
    )
    assert run(good) == []


def test_set_membership_is_not_an_ordering_hazard():
    good = mod(
        "repro.core.member",
        "def f(items, x):\n"
        "    seen = set(items)\n"
        "    return x in seen\n",
    )
    assert run(good) == []


# -- layering (RA004) --------------------------------------------------------


def test_layering_fires_on_upward_import():
    bad = mod(
        "repro.obs.badlayer",
        "from repro.crowd.platform import SimulatedCrowd\n",
    )
    assert codes(run(bad)) == ["RA004"]

    upward = mod(
        "repro.core.badlayer",
        "import repro.experiments\n",
    )
    assert codes(run(upward)) == ["RA004"]


def test_layering_quiet_on_allowed_imports():
    good = mod(
        "repro.core.goodlayer",
        "from repro.crowd.platform import SimulatedCrowd\n"
        "from repro.exceptions import CrowdSkyError\n"
        "from repro.obs import observe\n",
    )
    assert run(good) == []


# -- obs-schema (RA005-RA007) ------------------------------------------------


def test_unregistered_event_fires_and_registered_is_quiet():
    schema = mod("repro.obs.schema", SCHEMA_SOURCE)
    bad = mod(
        "repro.crowd.bademit",
        "def f(tracer, n):\n"
        "    tracer.event('crowd.rnd', round=n)\n"
        "    tracer.event('sweep.cached')\n",
    )
    found = run(schema, bad, select=["RA005"])
    assert codes(found) == ["RA005"]
    assert len(found) == 1
    assert "crowd.rnd" in found[0].message

    good = mod(
        "repro.crowd.goodemit",
        "def f(tracer, n):\n"
        "    tracer.event('crowd.round', round=n)\n"
        "    tracer.event('sweep.cached')\n",
    )
    assert run(schema, good, select=["RA005"]) == []


def test_never_emitted_event_reported_at_the_registry():
    schema = mod("repro.obs.schema", SCHEMA_SOURCE)
    partial = mod(
        "repro.crowd.partial",
        "def f(tracer):\n    tracer.event('crowd.round', round=1)\n",
    )
    found = run(schema, partial, select=["RA005", "RA006"])
    assert codes(found) == ["RA006"]
    assert found[0].path == schema.path
    assert "sweep.cached" in found[0].message


def test_metric_literal_fires_and_constant_is_quiet():
    metrics = mod("repro.obs.metrics", METRICS_SOURCE)
    bad = mod(
        "repro.crowd.badmetric",
        "def f(reg):\n"
        "    reg.counter('crowdsky_rounds_total')\n"
        "    reg.gauge('crowdsky_unregistered_thing')\n",
    )
    found = run(metrics, bad, select=["RA007"])
    assert codes(found) == ["RA007"]
    assert len(found) == 2

    good = mod(
        "repro.crowd.goodmetric",
        "from repro.obs.metrics import CROWD_ROUNDS\n\n"
        "def f(reg):\n    reg.counter(CROWD_ROUNDS)\n",
    )
    assert run(metrics, good, select=["RA007"]) == []


# -- cache-purity (RA008-RA009) ----------------------------------------------


def test_runner_env_read_and_nested_def_fire():
    runner = mod(
        "repro.experiments.cells",
        "import os\n\n"
        "def cell(config, seed):\n"
        "    return {'home': os.getenv('HOME')}\n",
    )
    caller = mod(
        "repro.experiments.drive",
        "RUNNER = 'repro.experiments.cells:cell'\n"
        "MISSING = 'repro.experiments.cells:nested'\n",
    )
    found = run(runner, caller, select=["RA008"])
    assert codes(found) == ["RA008"]
    # one for the env read, one for the unresolvable nested runner
    assert len(found) == 2


def test_runner_mutable_default_fires_and_pure_runner_is_quiet():
    impure = mod(
        "repro.experiments.impure",
        "def cell(config, seed, acc=[]):\n"
        "    acc.append(seed)\n"
        "    return {'n': len(acc)}\n",
    )
    ref = mod(
        "repro.experiments.refs",
        "RUNNER = 'repro.experiments.impure:cell'\n",
    )
    assert codes(run(impure, ref, select=["RA008", "RA009"])) == ["RA009"]

    pure = mod(
        "repro.experiments.pure",
        "def cell(config, seed, acc=None):\n"
        "    acc = [] if acc is None else acc\n"
        "    return {'seed': seed}\n",
    )
    pure_ref = mod(
        "repro.experiments.purerefs",
        "RUNNER = 'repro.experiments.pure:cell'\n",
    )
    assert run(pure, pure_ref, select=["RA008", "RA009"]) == []


def test_runner_outside_scanned_tree_is_runtime_problem():
    ref = mod(
        "repro.experiments.external",
        "RUNNER = 'repro.elsewhere:cell'\n",
    )
    assert run(ref, select=["RA008", "RA009"]) == []


# -- hygiene (RA010-RA011) ---------------------------------------------------


def test_bare_and_silent_except_fire():
    bad = mod(
        "repro.data.badhygiene",
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except:\n"
        "        raise\n"
        "    try:\n"
        "        g()\n"
        "    except OSError:\n"
        "        pass\n",
    )
    assert codes(run(bad)) == ["RA010", "RA011"]


def test_handled_except_is_quiet():
    good = mod(
        "repro.data.goodhygiene",
        "import logging\n\n"
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except OSError as error:\n"
        "        logging.warning('g failed: %s', error)\n",
    )
    assert run(good) == []


# -- persistence (RA012) -----------------------------------------------------


def test_truncating_writes_fire_in_persistence_module():
    bad = mod(
        "repro.crowd.journal",
        "import io\n"
        "from pathlib import Path\n\n"
        "def dump(path, data):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(data)\n"
        "    with io.open(path, mode='wb') as handle:\n"
        "        handle.write(data)\n"
        "    with open(path, 'x') as handle:\n"
        "        handle.write(data)\n"
        "    Path(path).write_text(data)\n"
        "    Path(path).write_bytes(data)\n",
    )
    findings = run(bad)
    assert codes(findings) == ["RA012"]
    assert len(findings) == 5


def test_append_read_and_atomic_writes_are_quiet():
    good = mod(
        "repro.crowd.journal",
        "from repro.io.atomic import atomic_write_text\n\n"
        "def keep(path, data, mode):\n"
        "    with open(path, 'ab') as handle:\n"
        "        handle.write(data)\n"
        "    with open(path) as handle:\n"
        "        handle.read()\n"
        "    with open(path, 'rb') as handle:\n"
        "        handle.read()\n"
        "    with open(path, mode) as handle:  # not statically known\n"
        "        handle.write(data)\n"
        "    atomic_write_text(path, data)\n",
    )
    assert run(good) == []


def test_truncating_write_outside_persistence_scope_is_quiet():
    scratch = mod(
        "repro.data.scratch",
        "def dump(path, data):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(data)\n",
    )
    assert run(scratch) == []


# -- suppression -------------------------------------------------------------


def test_noqa_with_matching_code_suppresses():
    src = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: noqa RA001 - test fixture\n"
    )
    assert run(mod("repro.core.s1", src)) == []


def test_noqa_with_wrong_code_does_not_suppress():
    src = (
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: noqa RA003\n"
    )
    assert codes(run(mod("repro.core.s2", src))) == ["RA001"]


def test_bare_noqa_suppresses_everything_on_the_line():
    src = (
        "import time, random\n\n"
        "def f():\n"
        "    return time.time() + random.random()  # repro: noqa\n"
    )
    assert run(mod("repro.core.s3", src)) == []


def test_noqa_on_except_line_covers_the_handler_body():
    src = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except OSError:  # repro: noqa RA011 - racing cleanup\n"
        "        pass\n"
    )
    assert run(mod("repro.data.s4", src)) == []


# -- baseline ----------------------------------------------------------------


def test_baseline_round_trip_gates_clean(tmp_path):
    bad = mod("repro.core.base1", "import time\nNOW = time.time()\n")
    findings = run(bad)
    assert codes(findings) == ["RA001"]

    entries = entries_from_findings(findings)
    assert all(e.rationale == TODO_RATIONALE for e in entries)
    justified = [
        BaselineEntry(e.code, e.path, e.context, "test fixture rationale")
        for e in entries
    ]
    file = tmp_path / "baseline.json"
    save_baseline(file, justified)
    loaded = load_baseline(file)
    assert loaded == sorted(justified, key=BaselineEntry.key)

    result = apply_baseline(findings, loaded)
    assert result.gate_findings() == []
    assert len(result.matched) == 1 and result.new == []


def test_todo_rationale_fails_the_gate():
    bad = mod("repro.core.base2", "import time\nNOW = time.time()\n")
    findings = run(bad)
    entries = entries_from_findings(findings)
    result = apply_baseline(findings, entries)
    gate = result.gate_findings()
    assert codes(gate) == ["RA000"]
    assert "rationale" in gate[0].message


def test_stale_entry_fails_the_gate():
    stale = BaselineEntry(
        "RA001", "repro/core/gone.py", "NOW = time.time()", "was real once"
    )
    result = apply_baseline([], [stale])
    gate = result.gate_findings()
    assert codes(gate) == ["RA000"]
    assert "stale" in gate[0].message


def test_baseline_matches_across_invocation_roots():
    bad = mod("repro.core.base3", "import time\nNOW = time.time()\n")
    findings = run(bad)
    entry = BaselineEntry(
        "RA001",
        "src/" + findings[0].path,
        findings[0].context,
        "root-relative entry",
    )
    result = apply_baseline(findings, [entry])
    assert result.new == [] and result.stale == []


def test_baseline_survives_line_drift():
    before = mod("repro.core.drift", "import time\nNOW = time.time()\n")
    entries = [
        BaselineEntry(e.code, e.path, e.context, "drift fixture")
        for e in entries_from_findings(run(before))
    ]
    after = mod(
        "repro.core.drift",
        "import time\n\n# pushed two lines down\nNOW = time.time()\n",
    )
    result = apply_baseline(run(after), entries)
    assert result.new == [] and result.stale == []


# -- CLI ---------------------------------------------------------------------


def _write_tree(tmp_path, files):
    for rel, source in files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(source, encoding="utf-8")
    return tmp_path


def _package_tree(tmp_path, module_source):
    return _write_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/mod.py": module_source,
    })


def test_cli_check_json_document_shape(tmp_path, capsys):
    root = _package_tree(tmp_path, "import time\nNOW = time.time()\n")
    code = main([
        "check", str(root / "src"), "--format", "json", "--no-baseline",
    ])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["summary"]["findings"] == 1
    assert document["summary"]["parse_errors"] == 0
    (finding,) = document["findings"]
    assert finding["code"] == "RA001"
    assert finding["path"].endswith("mod.py")
    assert {"line", "col", "message", "severity", "context", "family"} <= set(
        finding
    )


def test_cli_check_clean_tree_exits_zero(tmp_path, capsys):
    root = _package_tree(tmp_path, "VALUE = 1\n")
    code = main(["check", str(root / "src"), "--no-baseline"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_parse_error_exits_nonzero(tmp_path, capsys):
    root = _package_tree(tmp_path, "def broken(:\n")
    code = main(["check", str(root / "src"), "--no-baseline"])
    assert code == 1
    assert "parse error" in capsys.readouterr().err


def test_cli_baseline_write_then_check_passes(tmp_path, capsys):
    root = _package_tree(tmp_path, "import time\nNOW = time.time()\n")
    baseline = root / "baseline.json"
    assert main([
        "baseline", str(root / "src"), "--baseline", str(baseline), "--write",
    ]) == 0
    capsys.readouterr()
    # Fresh entries carry the TODO placeholder, so check still fails...
    assert main([
        "check", str(root / "src"), "--baseline", str(baseline),
    ]) == 1
    capsys.readouterr()
    # ...until a human writes the rationale.
    entries = [
        BaselineEntry(e.code, e.path, e.context, "justified in test")
        for e in load_baseline(baseline)
    ]
    save_baseline(baseline, entries)
    assert main([
        "check", str(root / "src"), "--baseline", str(baseline),
    ]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_rules_json(capsys):
    assert main(["rules", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert [r["code"] for r in document["rules"]] == [
        f"RA{n:03d}" for n in range(1, 17)
    ]


def test_module_name_for_walks_packages(tmp_path):
    root = _package_tree(tmp_path, "VALUE = 1\n")
    assert module_name_for(root / "src/repro/core/mod.py") == "repro.core.mod"
    loose = tmp_path / "loose.py"
    loose.write_text("VALUE = 1\n", encoding="utf-8")
    assert module_name_for(loose) == "loose"


# -- self-clean gate ---------------------------------------------------------


def test_repo_src_is_clean_modulo_committed_baseline():
    findings, problems = analyze_paths([REPO_ROOT / "src"])
    assert problems == []
    entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
    result = apply_baseline(findings, entries)
    gate = result.gate_findings()
    assert gate == [], "\n".join(f.render() for f in gate)


def test_committed_baseline_entries_all_have_rationales():
    # The last grandfathered entries (sorting -> crowd layering) were
    # retired when the question vocabulary moved to repro.questions; any
    # entry that reappears must carry a real rationale.
    entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
    for entry in entries:
        assert entry.rationale.strip(), entry
        assert not entry.rationale.startswith("TODO"), entry


# -- crash safety ------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=python_modules(), name=module_names())
def test_linter_never_crashes_on_valid_modules(source, name):
    module = SourceModule.parse(name, source, "generated.py")
    findings = analyze_modules([module])
    for finding in findings:
        assert finding.code.startswith("RA")
        assert finding.line >= 0 and finding.col >= 0
        finding.render()
        finding.to_json()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=python_modules(), other=python_modules())
def test_linter_never_crashes_on_module_pairs(source, other):
    # Pairs exercise the project rules' cross-module scans, including a
    # generated module impersonating the schema/metrics modules.
    modules = [
        SourceModule.parse("repro.obs.schema", source, "schema.py"),
        SourceModule.parse("repro.experiments.generated", other, "gen.py"),
    ]
    for finding in analyze_modules(modules):
        finding.render()

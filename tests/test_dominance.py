"""Tests for dominance primitives, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline.dominance import (
    DominanceRelation,
    compare,
    dominance_matrix,
    dominates,
    incomparable,
    skyline_mask,
)
from tests.strategies import known_matrices

matrices = arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=4),
    ),
    elements=st.floats(min_value=0.0, max_value=1.0, width=32),
)


class TestPredicates:
    def test_strict_dominance(self):
        assert dominates((1, 2), (2, 3))

    def test_weak_dominance_needs_one_strict(self):
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (1, 2))

    def test_no_dominance_when_worse_somewhere(self):
        assert not dominates((1, 5), (2, 3))

    def test_incomparable_symmetric_cases(self):
        assert incomparable((1, 5), (2, 3))
        assert incomparable((2, 3), (1, 5))
        assert incomparable((1, 2), (1, 2))  # equal tuples

    def test_compare_outcomes(self):
        assert compare((1, 2), (2, 3)) is DominanceRelation.FIRST_DOMINATES
        assert compare((2, 3), (1, 2)) is DominanceRelation.SECOND_DOMINATES
        assert compare((1, 2), (1, 2)) is DominanceRelation.EQUAL
        assert compare((1, 5), (2, 3)) is DominanceRelation.INCOMPARABLE


class TestDominanceMatrix:
    def test_matches_pairwise_predicate(self):
        rng = np.random.default_rng(0)
        data = rng.random((20, 3))
        matrix = dominance_matrix(data)
        for i in range(20):
            for j in range(20):
                assert matrix[i, j] == dominates(data[i], data[j])

    def test_diagonal_false(self):
        data = np.random.default_rng(1).random((10, 2))
        assert not np.any(np.diag(dominance_matrix(data)))

    def test_chunking_equivalence(self):
        data = np.random.default_rng(2).random((40, 3))
        assert np.array_equal(
            dominance_matrix(data, chunk_size=7),
            dominance_matrix(data, chunk_size=512),
        )

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_antisymmetric(self, data):
        matrix = dominance_matrix(data)
        assert not np.any(matrix & matrix.T)

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_transitive(self, data):
        matrix = dominance_matrix(data)
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                if matrix[i, j]:
                    # i ≺ j: everything j dominates, i dominates or equals.
                    dominated_by_j = np.flatnonzero(matrix[j])
                    for k in dominated_by_j:
                        assert matrix[i, k] or np.all(data[i] == data[k])


class TestSkylineMask:
    def test_matches_definition(self):
        rng = np.random.default_rng(3)
        data = rng.random((30, 3))
        mask = skyline_mask(data)
        matrix = dominance_matrix(data)
        for t in range(30):
            assert mask[t] == (not np.any(matrix[:, t]))

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_skyline_never_empty(self, data):
        assert np.any(skyline_mask(data))

    def test_equal_tuples_both_in_skyline(self):
        data = np.asarray([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        mask = skyline_mask(data)
        assert mask[0] and mask[1] and not mask[2]


class TestGeneratedRelations:
    """Properties over the shared relation-shape strategy
    (``tests/strategies/relations.py``): correlated, anticorrelated and
    duplicate-heavy grids with dense ties, the shapes the ``matrices``
    float strategy almost never hits."""

    @settings(max_examples=60, deadline=None)
    @given(known_matrices())
    def test_mask_matches_matrix_on_distribution_shapes(self, data):
        mask = skyline_mask(data)
        matrix = dominance_matrix(data)
        assert np.array_equal(mask, ~matrix.any(axis=0))

    @settings(max_examples=60, deadline=None)
    @given(known_matrices())
    def test_duplicate_rows_share_skyline_membership(self, data):
        mask = skyline_mask(data)
        n = data.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                if np.all(data[i] == data[j]):
                    assert mask[i] == mask[j]

    @settings(max_examples=40, deadline=None)
    @given(known_matrices(kinds=("duplicate_heavy",), max_rows=20))
    def test_chunked_matrix_stable_on_duplicate_heavy(self, data):
        assert np.array_equal(
            dominance_matrix(data, chunk_size=3),
            dominance_matrix(data, chunk_size=512),
        )

"""Targeted tests for remaining conditional branches across modules."""

import numpy as np
import pytest

from repro.core.crowdsky import CrowdSkyConfig, crowdsky
from repro.crowd.hits import HitLedger
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import MultiwayQuestion, PairwiseQuestion, UnaryQuestion
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset
from repro.experiments.plots import ascii_chart, chart_for_experiment
from repro.experiments.registry import run_experiment
from repro.incomplete import IncompleteRelation, lofi_skyline


class TestPlatformBranches:
    def test_ask_pairwise_serial_cache_path(self, toy):
        crowd = SimulatedCrowd(toy)
        question = PairwiseQuestion(0, 1)
        first = crowd.ask_pairwise(question)
        second = crowd.ask_pairwise(question)
        assert first is second
        assert crowd.stats.rounds == 1

    def test_multiway_all_cached_round_free(self, toy):
        crowd = SimulatedCrowd(toy)
        question = MultiwayQuestion((0, 1, 2))
        crowd.ask_multiway_round([question])
        before = crowd.stats.rounds
        crowd.ask_multiway_round([question, MultiwayQuestion((2, 1, 0))])
        assert crowd.stats.rounds == before  # same symmetric key: cached

    def test_unary_mixed_cached_and_fresh(self, toy):
        crowd = SimulatedCrowd(toy)
        crowd.ask_unary_round([UnaryQuestion(0, 0)])
        answers = crowd.ask_unary_round(
            [UnaryQuestion(0, 0), UnaryQuestion(1, 0)]
        )
        assert len(answers) == 2
        assert crowd.stats.questions == 2

    def test_ledger_records_multiway_and_unary_rounds(self, toy):
        ledger = HitLedger(seed=0)
        crowd = SimulatedCrowd(toy, ledger=ledger)
        crowd.ask_multiway_round([MultiwayQuestion((0, 1, 2))])
        crowd.ask_unary_round([UnaryQuestion(3, 0)])
        assert len(ledger.rounds()) == 2


class TestPlotsBranches:
    def test_chart_explicit_linear_override(self):
        result = run_experiment("fig8", scale="smoke")
        chart = chart_for_experiment(result, log_y=False)
        assert "[log y]" not in chart

    def test_chart_single_point(self):
        chart = ascii_chart([{"n": 3, "a": 7}], "n", ["a"])
        assert "o" in chart

    def test_chart_non_numeric_x_uses_index(self):
        rows = [{"q": "Q1", "v": 1.0}, {"q": "Q2", "v": 2.0}]
        chart = ascii_chart(rows, "q", ["v"])
        assert "q: 0 .. 1" in chart

    def test_chart_skips_non_numeric_series_values(self):
        rows = [{"n": 1, "a": "text"}, {"n": 2, "a": 5}]
        chart = ascii_chart(rows, "n", ["a"])
        assert "o" in chart


class TestLofiBranches:
    def test_high_threshold_shrinks_skyline(self):
        truth = np.random.default_rng(0).random((40, 3))
        loose = lofi_skyline(
            IncompleteRelation.mask_random_cells(truth, 0.4, seed=1),
            budget=0, threshold=0.3, seed=2,
        )
        strict = lofi_skyline(
            IncompleteRelation.mask_random_cells(truth, 0.4, seed=1),
            budget=0, threshold=0.9, seed=2,
        )
        assert strict.skyline <= loose.skyline

    def test_budget_larger_than_missing_stops_early(self):
        truth = np.random.default_rng(1).random((10, 2))
        relation = IncompleteRelation.mask_random_cells(truth, 0.2, seed=3)
        missing = relation.num_missing
        result = lofi_skyline(relation, budget=10_000, seed=4)
        assert result.questions_asked == missing


class TestConfigBranches:
    def test_multiway_validation(self):
        from repro.core.tasks import TupleTask
        from repro.core.preference import PreferenceSystem
        from repro.skyline.dominance import dominance_matrix
        from repro.skyline.dominating import FrequencyOracle

        toy = figure1_dataset()
        prefs = PreferenceSystem(len(toy), 1)
        frequency = FrequencyOracle(dominance_matrix(toy.known_matrix()))
        with pytest.raises(ValueError):
            TupleTask(0, [1], prefs, frequency, multiway=1)

    def test_round_robin_with_three_attributes(self):
        relation = generate_synthetic(
            40, 2, 3, Distribution.INDEPENDENT, seed=6
        )
        from repro.metrics.accuracy import ground_truth_skyline

        result = crowdsky(
            relation, config=CrowdSkyConfig(ac_round_robin=True)
        )
        assert result.skyline == ground_truth_skyline(relation)

"""Tests for the extension features: bitonic Baseline and budgeted mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import crowdsky, crowdsky_budgeted
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import FIGURE1_SKYLINE_LABELS, figure1_dataset
from repro.exceptions import CrowdSkyError
from repro.metrics.accuracy import ak_skyline, ground_truth_skyline
from repro.sorting.bitonic import bitonic_schedule, bitonic_sort
from repro.sorting.comparators import truth_comparator


class TestBitonicSchedule:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_stage_count_is_log_squared(self, n):
        import math

        stages = bitonic_schedule(n)
        if n > 1:
            log = int(math.log2(n))
            assert len(stages) == log * (log + 1) // 2

    def test_stage_pairs_disjoint(self):
        for stage in bitonic_schedule(16):
            slots = [slot for pair in stage for slot in pair]
            assert len(slots) == len(set(slots))


class TestBitonicSort:
    @settings(max_examples=40, deadline=None)
    @given(st.permutations(list(range(11))))
    def test_sorts_any_permutation(self, values):
        latent = np.asarray([[float(v)] for v in values])
        order = bitonic_sort(range(11), truth_comparator(latent))
        assert [values[i] for i in order] == sorted(values)

    @pytest.mark.parametrize("n", [1, 2, 3, 6, 9, 17])
    def test_non_power_of_two(self, n):
        latent = np.asarray([[float((i * 5) % n)] for i in range(n)])
        order = bitonic_sort(range(n), truth_comparator(latent))
        values = [latent[i, 0] for i in order]
        assert values == sorted(values)

    def test_on_stage_callback_counts_stages(self):
        latent = np.random.default_rng(0).random((16, 1))
        stages = []
        bitonic_sort(
            range(16),
            truth_comparator(latent),
            on_stage=lambda pairs: stages.append(len(pairs)),
        )
        assert len(stages) == len(bitonic_schedule(16))

    def test_ties_preserved(self):
        latent = np.asarray([[2.0], [1.0], [1.0]])
        order = bitonic_sort(range(3), truth_comparator(latent))
        assert order[0] in (1, 2)
        assert order[2] == 0


class TestBitonicBaseline:
    def test_matches_ground_truth(self):
        relation = generate_synthetic(
            60, 3, 1, Distribution.INDEPENDENT, seed=2
        )
        result = baseline_skyline(relation, sort="bitonic")
        assert result.skyline == ground_truth_skyline(relation)
        assert "bitonic" in result.algorithm

    def test_far_fewer_rounds_than_tournament(self):
        bitonic = baseline_skyline(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=3),
            sort="bitonic",
        )
        tournament = baseline_skyline(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=3),
            sort="tournament",
        )
        assert bitonic.stats.rounds < tournament.stats.rounds / 10
        assert bitonic.stats.questions > tournament.stats.questions

    def test_unknown_sort_rejected(self, toy):
        with pytest.raises(CrowdSkyError):
            baseline_skyline(toy, sort="quick")

    def test_toy_dataset(self, toy):
        result = baseline_skyline(figure1_dataset(), sort="bitonic")
        assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)


class TestBudgetedCrowdSky:
    def test_generous_budget_is_exact(self):
        relation = generate_synthetic(
            80, 3, 1, Distribution.INDEPENDENT, seed=5
        )
        result = crowdsky_budgeted(relation, 10_000)
        assert not result.budget_exhausted
        assert result.skyline == ground_truth_skyline(relation)
        assert result.complete_tuples == len(relation)

    def test_zero_budget_defaults_everything_to_skyline(self):
        relation = generate_synthetic(
            40, 3, 1, Distribution.INDEPENDENT, seed=5
        )
        result = crowdsky_budgeted(relation, 0)
        assert result.budget_exhausted
        assert result.skyline == set(range(len(relation)))

    def test_budget_matches_full_run_questions(self):
        relation = generate_synthetic(
            80, 3, 1, Distribution.INDEPENDENT, seed=6
        )
        full = crowdsky(
            generate_synthetic(80, 3, 1, Distribution.INDEPENDENT, seed=6)
        )
        result = crowdsky_budgeted(relation, full.stats.questions)
        assert not result.budget_exhausted
        assert result.skyline == full.skyline

    def test_result_quality_monotone_in_budget(self):
        """More budget never grows the (over-approximated) skyline."""
        sizes = []
        for budget in (0, 20, 60, 120, 100_000):
            relation = generate_synthetic(
                80, 3, 1, Distribution.INDEPENDENT, seed=7
            )
            result = crowdsky_budgeted(relation, budget)
            sizes.append(len(result.skyline))
        assert sizes == sorted(sizes, reverse=True)

    def test_partial_budget_never_misses_truth(self):
        """The budgeted result over-approximates: recall stays 1.0 with a
        perfect crowd (tuples are only removed on actual evidence)."""
        relation = generate_synthetic(
            80, 3, 1, Distribution.INDEPENDENT, seed=8
        )
        truth = ground_truth_skyline(relation)
        result = crowdsky_budgeted(relation, 30)
        assert truth <= result.skyline

    def test_questions_never_exceed_budget(self):
        relation = generate_synthetic(
            80, 3, 1, Distribution.INDEPENDENT, seed=9
        )
        result = crowdsky_budgeted(relation, 37)
        assert result.stats.questions <= 37

    def test_complete_count_includes_ak_skyline(self):
        relation = generate_synthetic(
            40, 3, 1, Distribution.INDEPENDENT, seed=10
        )
        result = crowdsky_budgeted(relation, 0)
        assert result.complete_tuples >= 0


class TestMultiwayQuestions:
    """The m-ary question extension (§2.1)."""

    def test_multiway_question_validation(self):
        from repro.crowd.questions import MultiwayQuestion

        with pytest.raises(ValueError):
            MultiwayQuestion((1,))
        with pytest.raises(ValueError):
            MultiwayQuestion((1, 1))
        assert MultiwayQuestion((3, 1, 2)).key() == (
            MultiwayQuestion((1, 2, 3)).key()
        )

    def test_platform_multiway_round(self, toy):
        from repro.crowd.platform import SimulatedCrowd
        from repro.crowd.questions import MultiwayQuestion

        crowd = SimulatedCrowd(toy)
        question = MultiwayQuestion(
            (toy.index_of("b"), toy.index_of("e"), toy.index_of("f"))
        )
        answers = crowd.ask_multiway_round([question])
        assert answers[question] == toy.index_of("f")
        assert crowd.stats.questions == 1
        # Re-asking is served from cache.
        crowd.ask_multiway_round([question])
        assert crowd.stats.questions == 1

    def test_figure3_probing_collapses_to_one_question(self, toy_fig3):
        """4-ary probing resolves {b, e, i, j} with a single micro-task:
        3 + 6 pairwise questions become 1 + 6."""
        from repro.core.crowdsky import CrowdSkyConfig

        result = crowdsky(toy_fig3, config=CrowdSkyConfig(multiway=4))
        assert result.stats.questions == 7
        assert result.skyline == ground_truth_skyline(toy_fig3)

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_multiway_correct_on_random_data(self, k):
        from repro.core.crowdsky import CrowdSkyConfig

        relation = generate_synthetic(
            60, 2, 1, Distribution.ANTI_CORRELATED, seed=11
        )
        result = crowdsky(relation, config=CrowdSkyConfig(multiway=k))
        assert result.skyline == ground_truth_skyline(relation)

    def test_multiway_parallel_schedulers(self):
        from repro.core.crowdsky import CrowdSkyConfig
        from repro.core.parallel import parallel_dset, parallel_sl

        for algorithm in (parallel_dset, parallel_sl):
            relation = generate_synthetic(
                60, 2, 1, Distribution.ANTI_CORRELATED, seed=12
            )
            result = algorithm(relation, config=CrowdSkyConfig(multiway=4))
            assert result.skyline == ground_truth_skyline(relation)

    def test_multiway_ignored_for_multiple_crowd_attributes(self):
        from repro.core.crowdsky import CrowdSkyConfig

        relation = generate_synthetic(
            40, 2, 2, Distribution.INDEPENDENT, seed=13
        )
        result = crowdsky(relation, config=CrowdSkyConfig(multiway=4))
        assert result.skyline == ground_truth_skyline(relation)

    def test_multiway_under_noise_terminates(self):
        from repro.core.crowdsky import CrowdSkyConfig
        from repro.crowd.platform import SimulatedCrowd
        from repro.crowd.voting import StaticVoting
        from repro.crowd.workers import WorkerPool

        relation = generate_synthetic(
            80, 2, 1, Distribution.ANTI_CORRELATED, seed=14
        )
        crowd = SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(accuracy=0.7),
            voting=StaticVoting(3),
            seed=14,
        )
        result = crowdsky(
            relation, crowd=crowd, config=CrowdSkyConfig(multiway=4)
        )
        assert result.skyline

    def test_worker_multiway_error_model(self, toy, rng):
        from repro.crowd.oracle import GroundTruthOracle
        from repro.crowd.questions import MultiwayQuestion
        from repro.crowd.workers import BernoulliWorker

        oracle = GroundTruthOracle(toy)
        question = MultiwayQuestion(
            (toy.index_of("b"), toy.index_of("e"), toy.index_of("f"))
        )
        always_wrong = BernoulliWorker(accuracy=0.0)
        answer = always_wrong.answer_multiway(question, oracle, rng)
        assert answer in question.candidates
        assert answer != toy.index_of("f")


class TestPartialIncompleteness:
    """The §2.2 extension: some tuples' crowd values are stored."""

    def _dataset(self, seed=9):
        return generate_synthetic(
            120, 3, 1, Distribution.INDEPENDENT, seed=seed
        )

    def test_all_visible_needs_no_questions(self):
        relation = self._dataset()
        result = crowdsky(relation, visible_crowd=range(len(relation)))
        assert result.stats.questions == 0
        assert result.skyline == ground_truth_skyline(relation)

    def test_partial_visibility_reduces_questions_monotonically(self):
        counts = []
        for fraction in (0.0, 0.4, 0.8, 1.0):
            relation = self._dataset()
            visible = range(int(len(relation) * fraction))
            result = crowdsky(relation, visible_crowd=visible)
            assert result.skyline == ground_truth_skyline(relation)
            counts.append(result.stats.questions)
        assert counts == sorted(counts, reverse=True)

    def test_visible_pairs_never_asked(self):
        relation = self._dataset()
        visible = set(range(60))
        result = crowdsky(relation, visible_crowd=visible)
        for _, question, _ in result.question_log:
            assert not (
                question.left in visible and question.right in visible
            )

    @pytest.mark.parametrize("algorithm_name", ["dset", "sl"])
    def test_parallel_schedulers_support_visibility(self, algorithm_name):
        from repro.core.parallel import parallel_dset, parallel_sl

        algorithm = parallel_dset if algorithm_name == "dset" else parallel_sl
        relation = self._dataset(seed=10)
        result = algorithm(relation, visible_crowd=range(60))
        assert result.skyline == ground_truth_skyline(relation)

    def test_multi_attribute_visibility(self):
        relation = generate_synthetic(
            60, 2, 2, Distribution.INDEPENDENT, seed=11
        )
        result = crowdsky(relation, visible_crowd=range(30))
        assert result.skyline == ground_truth_skyline(relation)

    def test_seed_handles_ties(self):
        from tests.conftest import make_relation

        relation = make_relation(
            [(1, 9), (2, 8), (3, 7), (4, 6)],
            [(5,), (5,), (1,), (2,)],
        )
        result = crowdsky(relation, visible_crowd=[0, 1, 2, 3])
        assert result.stats.questions == 0
        assert result.skyline == ground_truth_skyline(relation)

    def test_empty_and_singleton_visibility_noop(self):
        relation = self._dataset(seed=12)
        baseline = crowdsky(self._dataset(seed=12))
        for visible in ([], [5]):
            relation = self._dataset(seed=12)
            result = crowdsky(relation, visible_crowd=visible)
            assert result.stats.questions == baseline.stats.questions

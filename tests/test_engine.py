"""Direct tests for the shared engine helpers."""

import pytest

from repro.core.engine import (
    apply_multiway_answers,
    build_context,
    preprocess_duplicates,
    seed_visible_preferences,
)
from repro.core.preference import PreferenceSystem
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import MultiwayQuestion, Preference
from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import CrowdSkyError
from tests.conftest import make_relation

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL


class TestBuildContext:
    def test_rejects_machine_only_relation(self):
        relation = make_relation([(1, 2)])
        with pytest.raises(CrowdSkyError):
            build_context(relation)

    def test_rejects_mismatched_crowd(self, toy, toy_fig3):
        with pytest.raises(CrowdSkyError):
            build_context(toy, crowd=SimulatedCrowd(toy_fig3))

    def test_eval_order_excludes_removed(self):
        relation = make_relation(
            [(1, 1), (1, 1), (2, 2)],
            [(2,), (1,), (3,)],
        )
        context = build_context(relation)
        # Tuple 0 loses its AK-twin duel and is preprocessed away.
        assert context.removed == {0}
        assert 0 not in context.eval_order()

    def test_eval_order_memo_invalidates_on_removed(self):
        relation = make_relation(
            [(1, 1), (2, 2), (3, 3)],
            [(1,), (2,), (3,)],
        )
        context = build_context(relation)
        first = context.eval_order()
        assert context.eval_order() == first
        # The memo hands out copies: mutating one must not poison it.
        context.eval_order().append(99)
        assert context.eval_order() == first
        context.removed.add(first[0])
        assert first[0] not in context.eval_order()

    def test_ds_in_eval_order_sorted_by_ds_size(self, toy):
        context = build_context(toy)
        j = toy.index_of("j")
        members = context.ds_in_eval_order(j)
        sizes = [len(context.dominating[s]) for s in members]
        assert sizes == sorted(sizes)


class TestPreprocessDuplicates:
    def test_no_duplicates_no_questions(self, toy):
        crowd = SimulatedCrowd(toy)
        prefs = PreferenceSystem(len(toy), 1)
        removed = preprocess_duplicates(toy, crowd, prefs)
        assert removed == set()
        assert crowd.stats.questions == 0

    def test_three_way_group(self):
        relation = make_relation(
            [(1, 1)] * 3,
            [(3,), (1,), (2,)],
        )
        crowd = SimulatedCrowd(relation)
        prefs = PreferenceSystem(3, 1)
        removed = preprocess_duplicates(relation, crowd, prefs)
        assert removed == {0, 2}

    def test_tied_duplicates_survive(self):
        relation = make_relation(
            [(1, 1), (1, 1)],
            [(7,), (7,)],
        )
        crowd = SimulatedCrowd(relation)
        prefs = PreferenceSystem(2, 1)
        assert preprocess_duplicates(relation, crowd, prefs) == set()

    def test_multi_attribute_duplicates(self):
        relation = make_relation(
            [(1, 1), (1, 1)],
            [(1, 2), (2, 1)],  # incomparable in AC: both survive
        )
        crowd = SimulatedCrowd(relation)
        prefs = PreferenceSystem(2, 2)
        assert preprocess_duplicates(relation, crowd, prefs) == set()

    def test_interleaved_groups_keep_first_occurrence_order(self):
        # Two AK-duplicate groups interleaved in tuple order; grouping
        # via np.unique must still visit them in first-occurrence order
        # with ascending members (question order feeds the seeded RNG).
        relation = make_relation(
            [(2, 2), (1, 1), (2, 2), (1, 1)],
            [(2,), (9,), (1,), (3,)],
        )
        crowd = SimulatedCrowd(relation)
        prefs = PreferenceSystem(4, 1)
        removed = preprocess_duplicates(relation, crowd, prefs)
        assert removed == {0, 1}
        assert crowd.stats.questions == 2


class TestSeedVisiblePreferences:
    def test_chain_edges_give_full_order(self):
        relation = generate_synthetic(
            20, 2, 1, Distribution.INDEPENDENT, seed=1
        )
        prefs = PreferenceSystem(20, 1)
        edges = seed_visible_preferences(prefs, relation, range(10))
        assert edges == 9  # k - 1 chain edges
        latent = relation.latent_matrix()[:, 0]
        for u in range(10):
            for v in range(10):
                if u != v:
                    expected = L if latent[u] < latent[v] else R
                    assert prefs.relation(u, v, 0) is expected

    def test_fewer_than_two_visible_is_noop(self, toy):
        prefs = PreferenceSystem(len(toy), 1)
        assert seed_visible_preferences(prefs, toy, []) == 0
        assert seed_visible_preferences(prefs, toy, [3]) == 0

    def test_ties_seed_equal(self):
        relation = make_relation(
            [(1, 2), (2, 1), (3, 3)],
            [(5,), (5,), (9,)],
        )
        prefs = PreferenceSystem(3, 1)
        seed_visible_preferences(prefs, relation, [0, 1, 2])
        assert prefs.relation(0, 1, 0) is E
        assert prefs.relation(0, 2, 0) is L


class TestApplyMultiwayAnswers:
    def test_winner_edges(self):
        prefs = PreferenceSystem(5, 1)
        question = MultiwayQuestion((0, 1, 2))
        apply_multiway_answers(prefs, {question: 1})
        assert prefs.relation(1, 0, 0) is L
        assert prefs.relation(1, 2, 0) is L
        assert prefs.relation(0, 2, 0) is None  # losers stay unordered

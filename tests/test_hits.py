"""Tests for the HIT ledger (AMT-level bookkeeping)."""

import numpy as np
import pytest

from repro.core.baseline import baseline_skyline
from repro.core.parallel import parallel_sl
from repro.crowd.hits import Hit, HitLedger, RoundRecord
from repro.crowd.platform import SimulatedCrowd
from repro.data.movies import movies_dataset
from repro.exceptions import CrowdPlatformError


class TestHitLedger:
    def test_parameters_validated(self):
        with pytest.raises(CrowdPlatformError):
            HitLedger(seconds_per_hit=0.0)
        with pytest.raises(CrowdPlatformError):
            HitLedger(questions_per_hit=0)
        with pytest.raises(CrowdPlatformError):
            HitLedger(rng=np.random.default_rng(0), seed=1)

    def test_packing_five_questions_per_hit(self):
        ledger = HitLedger(seed=0)
        ledger.record_round(1, 12)
        (record,) = ledger.rounds()
        assert [hit.num_questions for hit in record.hits] == [5, 5, 2]
        assert ledger.num_hits == 3

    def test_empty_round_ignored(self):
        ledger = HitLedger(seed=0)
        ledger.record_round(1, 0)
        assert ledger.num_hits == 0
        assert ledger.wall_clock_seconds() == 0.0

    def test_sampled_mean_near_configured(self):
        ledger = HitLedger(seconds_per_hit=49.0, seed=1)
        for round_number in range(1, 201):
            ledger.record_round(round_number, 5)
        assert abs(ledger.mean_hit_duration() - 49.0) < 5.0

    def test_makespan_is_slowest_hit(self):
        record = RoundRecord(
            1,
            hits=[
                Hit(0, 1, 5, 10.0),
                Hit(1, 1, 5, 30.0),
                Hit(2, 1, 2, 20.0),
            ],
        )
        assert record.makespan == 30.0

    def test_wall_clock_sums_round_makespans(self):
        ledger = HitLedger(seconds_per_hit=10.0, round_overhead=5.0, seed=2)
        ledger.record_round(1, 3)
        ledger.record_round(2, 3)
        records = ledger.rounds()
        expected = sum(r.makespan + 5.0 for r in records)
        assert ledger.wall_clock_seconds() == pytest.approx(expected)

    def test_seed_reproducibility(self):
        a, b = HitLedger(seed=7), HitLedger(seed=7)
        a.record_round(1, 10)
        b.record_round(1, 10)
        assert a.wall_clock_seconds() == b.wall_clock_seconds()


class TestPlatformIntegration:
    def test_ledger_tracks_every_round(self):
        relation = movies_dataset()
        ledger = HitLedger(seconds_per_hit=49.0, seed=1)
        crowd = SimulatedCrowd(relation, ledger=ledger)
        result = parallel_sl(relation, crowd=crowd)
        assert len(ledger.rounds()) == result.stats.rounds
        total_questions = sum(
            hit.num_questions
            for record in ledger.rounds()
            for hit in record.hits
        )
        assert total_questions == result.stats.questions

    def test_parallel_wall_clock_dwarfs_baseline(self):
        """§6.2's practical story: minutes instead of hours on Q2."""
        relation = movies_dataset()
        fast_ledger = HitLedger(seconds_per_hit=49.0, seed=2)
        parallel_sl(
            relation, crowd=SimulatedCrowd(relation, ledger=fast_ledger)
        )
        relation = movies_dataset()
        slow_ledger = HitLedger(seconds_per_hit=49.0, seed=2)
        baseline_skyline(
            relation, crowd=SimulatedCrowd(relation, ledger=slow_ledger)
        )
        assert fast_ledger.wall_clock_seconds() < (
            slow_ledger.wall_clock_seconds() / 5
        )

"""Regenerate ``tests/fixtures/golden_counts.json``.

Run via ``make regen-golden`` (or ``PYTHONPATH=src python -m
tests.regen_golden``) after an *intentional* behaviour change — e.g. a
new pruning rule that legitimately alters question counts. The golden
test (``tests/test_golden_counts.py``) fails on any drift in questions,
rounds, skylines or rejected answers across a small seeded matrix of
(dataset × scheduler × preference backend).

The matrix is deliberately tiny: it is a drift tripwire, not a
benchmark. Cross-backend agreement is additionally asserted at
generation time, so a broken backend cannot be baked into the fixture.
"""

from __future__ import annotations

import json
from math import ceil
from pathlib import Path

from repro.core import CrowdSkyConfig, crowdsky, parallel_dset, parallel_sl
from repro.crowd.platform import QUESTIONS_PER_HIT
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "golden_counts.json"

BACKENDS = ("reference", "bitset", "numpy")

SCHEDULERS = {
    "crowdsky": crowdsky,
    "parallel_dset": parallel_dset,
    "parallel_sl": parallel_sl,
}

#: Shard count pinned alongside the serial counts (``@shards4`` keys).
#: The hash partitioner is the interesting one — non-contiguous shards.
GOLDEN_SHARDS = 4


def datasets():
    """The golden dataset matrix — small, seeded, diverse."""
    return {
        "toy_fig1": figure1_dataset(),
        "ind_n40": generate_synthetic(
            40, 2, 1, Distribution.INDEPENDENT, seed=42
        ),
        "ant_n36": generate_synthetic(
            36, 2, 1, Distribution.ANTI_CORRELATED, seed=7
        ),
        "cor_n40": generate_synthetic(
            40, 2, 1, Distribution.CORRELATED, seed=3
        ),
        "ind_ac2_n30": generate_synthetic(
            30, 2, 2, Distribution.INDEPENDENT, seed=11
        ),
    }


def run_case(
    relation, scheduler_name: str, backend: str, shards: int = 1
) -> dict:
    result = SCHEDULERS[scheduler_name](
        relation,
        config=CrowdSkyConfig(
            backend=backend,
            shards=shards,
            shard_partitioner="hash" if shards > 1 else "range",
        ),
    )
    return {
        "questions": result.stats.questions,
        "rounds": result.stats.rounds,
        "hits": sum(
            ceil(size / QUESTIONS_PER_HIT)
            for size in result.stats.round_sizes
            if size
        ),
        "skyline": sorted(result.skyline),
        "rejected_answers": result.rejected_answers,
    }


def build_golden() -> dict:
    golden: dict = {}
    for dataset_name, relation in datasets().items():
        for scheduler_name in SCHEDULERS:
            per_backend = {
                backend: run_case(relation, scheduler_name, backend)
                for backend in BACKENDS
            }
            if any(
                per_backend[backend] != per_backend["reference"]
                for backend in BACKENDS
            ):
                raise SystemExit(
                    f"backend drift while regenerating golden counts: "
                    f"{dataset_name}/{scheduler_name}: {per_backend}"
                )
            golden[f"{dataset_name}/{scheduler_name}"] = per_backend
            # Sharded machine phase: pinned with its own keys, and
            # asserted equal to the serial counts at generation time so
            # shard divergence can never be baked into the fixture.
            sharded = {
                backend: run_case(
                    relation, scheduler_name, backend,
                    shards=GOLDEN_SHARDS,
                )
                for backend in BACKENDS
            }
            if sharded != per_backend:
                raise SystemExit(
                    f"sharded drift while regenerating golden counts: "
                    f"{dataset_name}/{scheduler_name}: {sharded} != "
                    f"{per_backend}"
                )
            golden[
                f"{dataset_name}/{scheduler_name}@shards{GOLDEN_SHARDS}"
            ] = sharded
    return golden


def main() -> None:
    golden = build_golden()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {len(golden)} cases to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()

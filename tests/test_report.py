"""Tests for span-derived profiling, cost attribution and RunReports.

The two acceptance properties this file pins:

* profiler exactness — per-phase *self* times partition the trace, so
  they sum to the total traced wall time (well inside the 5% band);
* cost exactness — every cost breakdown (ledger-side
  ``CrowdSkylineResult.cost_breakdown`` and trace-side
  ``cost_from_events``) totals *bit-for-bit* what the platform's AMT
  ledger charged, because both price the same integer HIT sum.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.crowdsky import CrowdSkyConfig, crowdsky, crowdsky_budgeted
from repro.core.parallel import parallel_dset, parallel_sl
from repro.crowd import platform as P
from repro.crowd import voting as V
from repro.data.synthetic import generate_synthetic
from repro.data.toy import figure1_dataset
from repro.exceptions import TraceSchemaError
from repro.experiments.cli import main as cli_main
from repro.obs import observe, read_trace_jsonl
from repro.obs import report as R
from repro.obs.perf import (
    machine_fingerprint,
    phase_breakdown,
    profile_spans,
    regress,
    same_machine,
)
from repro.obs.schema import validate_events

pytestmark = pytest.mark.obs

BASELINES = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "baselines",
    "bench_trajectory.json",
)


@pytest.fixture(scope="module")
def traced_run():
    """One traced end-to-end run shared by the read-only tests."""
    relation = generate_synthetic(80, 2, 2, seed=11)
    with observe() as observation:
        result = crowdsky(relation)
    events = list(observation.tracer.events)
    assert validate_events(events) == []
    return events, result


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_self_times_partition_the_trace(self, traced_run):
        events, _ = traced_run
        breakdown = phase_breakdown(events)
        total = breakdown["total_wall_s"]
        assert total > 0
        summed = sum(phase["self_s"] for phase in breakdown["phases"])
        # Acceptance bound is 5%; self-time partitions exactly, so the
        # only slack we allow is float rounding.
        assert summed == pytest.approx(total, rel=1e-9)
        assert abs(summed - total) <= 0.05 * total

    def test_expected_phases_present(self, traced_run):
        events, _ = traced_run
        names = set(profile_spans(events))
        assert {"engine.preprocess", "engine.dominance",
                "engine.dominating_sets", "crowd.post"} <= names

    def test_histogram_counts_match_span_counts(self, traced_run):
        events, _ = traced_run
        for stats in profile_spans(events).values():
            assert sum(stats.histogram) == stats.count
            payload = stats.to_dict()
            assert sum(payload["histogram"].values()) == stats.count

    def test_cpu_time_captured(self, traced_run):
        events, _ = traced_run
        breakdown = phase_breakdown(events)
        assert breakdown["total_cpu_s"] is not None
        assert breakdown["total_cpu_s"] >= 0


# ---------------------------------------------------------------------------
# Cost attribution
# ---------------------------------------------------------------------------


class TestCostAttribution:
    def test_constants_match_the_platform(self):
        # report.py may not import repro.crowd (layering), so it
        # duplicates the AMT constants; this is the pin.
        assert R.DEFAULT_PRICE == P.DEFAULT_PRICE
        assert R.QUESTIONS_PER_HIT == P.QUESTIONS_PER_HIT
        assert R.DEFAULT_OMEGA == V.DEFAULT_OMEGA

    @pytest.mark.parametrize(
        "algorithm",
        [crowdsky, parallel_dset, parallel_sl],
        ids=["serial", "parallel_dset", "parallel_sl"],
    )
    def test_breakdown_total_equals_ledger_exactly(self, algorithm):
        relation = generate_synthetic(60, 2, 2, seed=4)
        result = algorithm(relation)
        breakdown = result.cost_breakdown()
        assert breakdown["total_cost"] == result.stats.hit_cost()
        assert breakdown["questions"] == result.stats.questions

    def test_breakdown_exact_with_multiway_merging(self):
        relation = generate_synthetic(90, 2, 2, seed=9)
        result = parallel_sl(relation, config=CrowdSkyConfig(multiway=3))
        breakdown = result.cost_breakdown()
        assert breakdown["total_cost"] == result.stats.hit_cost()

    def test_budgeted_breakdown_exact_and_attributed(self):
        toy = figure1_dataset()
        result = crowdsky_budgeted(toy, 5)
        breakdown = result.cost_breakdown()
        assert breakdown["total_cost"] == result.stats.hit_cost()
        assert "crowdsky_budgeted" in breakdown["by_scheduler"]

    def test_dimension_buckets_sum_to_total(self):
        relation = generate_synthetic(60, 2, 2, seed=4)
        result = parallel_sl(relation)
        breakdown = result.cost_breakdown()
        for dim in ("by_scheduler", "by_phase", "by_layer"):
            groups = breakdown[dim]
            assert groups, dim
            assert sum(b["hits"] for b in groups.values()) == (
                breakdown["hits"]
            )
        # parallel_sl charges per activation wave.
        assert all(k.isdigit() for k in breakdown["by_layer"])

    def test_trace_side_cost_matches_ledger(self, traced_run):
        events, result = traced_run
        cost = R.cost_from_events(events)
        assert cost["total_cost"] == result.stats.hit_cost()
        assert cost["questions"] == result.stats.questions

    def test_multi_run_trace_scopes_round_counters(self):
        # Round numbering restarts per crowd; two runs in one trace
        # must still price like the sum of their ledgers.
        with observe() as observation:
            first = parallel_sl(
                generate_synthetic(70, 2, 2, seed=3),
                config=CrowdSkyConfig(multiway=3),
            )
            second = crowdsky(generate_synthetic(50, 2, 2, seed=5))
        cost = R.cost_from_events(list(observation.tracer.events))
        # Each run's scheduler bucket prices its own integer HIT count
        # — the ledger's exact expression; the grand total prices the
        # combined count, so it only matches the *sum of floats* to
        # rounding.
        assert cost["by_scheduler"]["parallel_sl"]["cost"] == (
            first.stats.hit_cost()
        )
        assert cost["by_scheduler"]["crowdsky"]["cost"] == (
            second.stats.hit_cost()
        )
        assert cost["total_cost"] == pytest.approx(
            first.stats.hit_cost() + second.stats.hit_cost(), rel=1e-12
        )


# ---------------------------------------------------------------------------
# Trace summary + RunReport artifact
# ---------------------------------------------------------------------------


class TestRunReport:
    def test_trace_summary_validates_and_counts(self, traced_run):
        events, result = traced_run
        summary = R.trace_summary(events)
        R.validate_trace_summary(summary)
        assert summary["questions"] == result.stats.questions
        assert summary["rounds"] == result.stats.rounds
        with pytest.raises(TraceSchemaError):
            R.validate_trace_summary({"schema": "bogus"})

    def test_report_roundtrip_and_acceptance_bounds(
        self, traced_run, tmp_path
    ):
        events, result = traced_run
        report = R.build_run_report(
            events, metrics={"crowdsky_questions_total": 1.0},
            journal={"segments": 1}, meta={"run": "unit"},
        )
        R.validate_run_report(report)
        # Acceptance: phases sum within 5% of total, cost equals ledger.
        profile = report["profile"]
        summed = sum(p["self_s"] for p in profile["phases"])
        assert abs(summed - profile["total_wall_s"]) <= (
            0.05 * profile["total_wall_s"]
        )
        assert report["cost"]["total_cost"] == result.stats.hit_cost()

        paths = R.write_run_report(report, str(tmp_path))
        loaded = json.loads(
            open(paths["json"]).read()
        )
        R.validate_run_report(loaded)
        markdown = open(paths["markdown"]).read()
        assert "# CrowdSky run report" in markdown
        assert "Where the time went" in markdown
        assert "Where the money went" in markdown

    def test_cli_report_and_json_summary(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        trace = run_dir / "trace.jsonl"
        code = cli_main(
            ["run", "fig6a", "--scale", "smoke", "--no-cache",
             "--trace", str(trace)]
        )
        assert code == 0
        assert cli_main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "report.json" in out and "report.md" in out
        report = json.loads((run_dir / "report.json").read_text())
        R.validate_run_report(report)

        assert cli_main(
            ["trace", "summarize", str(trace), "--format", "json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        R.validate_trace_summary(summary)
        assert summary == report["trace"]


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------


def _committed_baseline(suite="smoke"):
    with open(BASELINES) as handle:
        return json.load(handle)["suites"][suite]


def _slowed(record, factor):
    slow = json.loads(json.dumps(record))
    for entry in slow["results"]:
        entry["median_s"] *= factor
        entry["runs_s"] = [value * factor for value in entry["runs_s"]]
    return slow


class TestRegressionGate:
    def test_detects_2x_slowdown_against_committed_baseline(self):
        baseline = _committed_baseline()
        candidate = _slowed(baseline, 2.0)
        findings = regress(candidate, baseline, tolerance=0.30)
        flagged = {finding.benchmark for finding in findings}
        # Every benchmark above the 5ms noise floor must be caught.
        expected = {
            entry["id"]
            for entry in baseline["results"]
            if entry["median_s"] * 2.0 > 0.005
        }
        assert expected and expected <= flagged
        assert all(
            finding.ratio == pytest.approx(2.0) for finding in findings
        )

    def test_self_comparison_is_clean(self):
        baseline = _committed_baseline()
        assert regress(baseline, baseline) == []

    def test_noise_floor_suppresses_fast_benchmarks(self):
        baseline = _committed_baseline()
        candidate = _slowed(baseline, 2.0)
        findings = regress(
            candidate, baseline, tolerance=0.30, min_seconds=10_000.0
        )
        assert findings == []

    def test_fastest_run_rescues_a_noisy_median(self):
        baseline = _committed_baseline()
        candidate = _slowed(baseline, 2.0)
        for entry in candidate["results"]:
            entry["runs_s"].append(entry["median_s"] / 2.0)  # one fast run
        assert regress(candidate, baseline, tolerance=0.30) == []

    def test_fingerprint_mismatch_skips(self):
        baseline = _committed_baseline()
        candidate = _slowed(baseline, 2.0)
        candidate["fingerprint"] = dict(
            candidate["fingerprint"], machine="riscv64"
        )
        assert not same_machine(
            candidate["fingerprint"], baseline["fingerprint"]
        )
        assert regress(candidate, baseline) == []
        assert regress(candidate, baseline, ignore_fingerprint=True)

    def test_committed_baseline_has_both_suites(self):
        with open(BASELINES) as handle:
            suites = json.load(handle)["suites"]
        assert {"smoke", "ci"} <= set(suites)
        for suite, record in suites.items():
            assert record["suite"] == suite
            assert record["results"]
            for entry in record["results"]:
                assert entry["runs_s"]
                assert entry["median_s"] > 0


# ---------------------------------------------------------------------------
# Bench harness
# ---------------------------------------------------------------------------


class TestBenchHarness:
    def test_smoke_suite_records_and_appends(self, tmp_path):
        from repro.experiments import bench

        record = bench.run_suite("smoke", repeats=1)
        assert record["schema"] == bench.BENCH_RECORD_SCHEMA
        assert record["fingerprint"] == machine_fingerprint()
        ids = [entry["id"] for entry in record["results"]]
        assert ids == [
            "closure_bitset_n128", "fig6a_smoke_cold",
            "fig6a_smoke_warm", "crowdsky_e2e_n200",
        ]
        # The warm sweep must actually hit the cache.
        by_id = {entry["id"]: entry for entry in record["results"]}
        assert by_id["fig6a_smoke_warm"]["median_s"] < (
            by_id["fig6a_smoke_cold"]["median_s"]
        )

        trajectory = tmp_path / "BENCH_trajectory.json"
        assert bench.append_record(record, trajectory) == 1
        assert bench.append_record(record, trajectory) == 2
        assert len(bench.load_trajectory(trajectory)) == 2

        baseline_file = tmp_path / "baselines.json"
        baseline_file.write_text(
            json.dumps({"suites": {"smoke": record}})
        )
        findings, message = bench.check_against_baseline(
            record, baseline_file
        )
        assert findings == []
        findings, message = bench.check_against_baseline(
            _slowed(record, 3.0), baseline_file
        )
        assert findings
        assert "regression" in message

    def test_unknown_suite_rejected(self):
        from repro.exceptions import ExperimentError
        from repro.experiments.bench import run_suite

        with pytest.raises(ExperimentError):
            run_suite("warp")
        with pytest.raises(ExperimentError):
            run_suite("smoke", repeats=0)

    def test_cli_bench_gates(self, tmp_path, capsys):
        trajectory = tmp_path / "BT.json"
        code = cli_main(
            ["bench", "--suite", "smoke", "--repeats", "1",
             "--output", str(trajectory)]
        )
        assert code == 0
        records = json.loads(trajectory.read_text())
        assert len(records) == 1
        capsys.readouterr()

        # Gate the recorded run against a 2x-slower "baseline": the
        # candidate is then *faster*, so the gate passes; gate it
        # against a 2x-faster baseline and it must fail.
        record = records[0]
        slower = tmp_path / "slower.json"
        slower.write_text(
            json.dumps({"suites": {"smoke": _slowed(record, 2.0)}})
        )
        assert cli_main(
            ["bench", "--suite", "smoke", "--repeats", "1",
             "--output", str(trajectory), "--check",
             "--baseline", str(slower)]
        ) == 0
        capsys.readouterr()

        faster = tmp_path / "faster.json"
        faster.write_text(
            json.dumps({"suites": {"smoke": _slowed(record, 0.25)}})
        )
        assert cli_main(
            ["bench", "--suite", "smoke", "--repeats", "1",
             "--output", str(trajectory), "--check",
             "--baseline", str(faster)]
        ) == 1
        assert cli_main(
            ["bench", "--suite", "smoke", "--repeats", "1",
             "--output", str(trajectory), "--check", "--report-only",
             "--baseline", str(faster)]
        ) == 0

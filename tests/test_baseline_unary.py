"""Tests for the tournament Baseline and the Unary [12] simulation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import baseline_skyline, crowd_ranks
from repro.core.crowdsky import crowdsky
from repro.core.unary import unary_skyline
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import FIGURE1_SKYLINE_LABELS, figure1_dataset
from repro.exceptions import CrowdSkyError
from repro.metrics.accuracy import ground_truth_skyline, precision_recall
from repro.sorting.comparators import CountingComparator, truth_comparator
from repro.sorting.tournament import tournament_sort
from tests.conftest import make_relation


class TestTournamentSort:
    def test_empty_and_single(self):
        compare = truth_comparator(np.asarray([[1.0]]))
        assert tournament_sort([], compare) == []
        assert tournament_sort([0], compare) == [0]

    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(12))))
    def test_sorts_any_permutation(self, values):
        latent = np.asarray([[float(v)] for v in values])
        order = tournament_sort(range(12), truth_comparator(latent))
        assert [values[i] for i in order] == sorted(values)

    def test_comparison_count_near_n_log_n(self):
        n = 64
        latent = np.random.default_rng(0).random((n, 1))
        counter = CountingComparator(truth_comparator(latent))
        tournament_sort(range(n), counter)
        upper = (n - 1) * (1 + math.ceil(math.log2(n)))
        assert counter.calls <= upper

    def test_ties_keep_stable_order(self):
        latent = np.asarray([[1.0], [1.0], [0.5]])
        order = tournament_sort(range(3), truth_comparator(latent))
        assert order == [2, 0, 1]

    def test_non_power_of_two_sizes(self):
        for n in (3, 5, 7, 13):
            latent = np.asarray([[float((i * 7) % n)] for i in range(n)])
            order = tournament_sort(range(n), truth_comparator(latent))
            sorted_values = [latent[i, 0] for i in order]
            assert sorted_values == sorted(sorted_values)


class TestBaselineSkyline:
    def test_requires_crowd_attribute(self):
        with pytest.raises(CrowdSkyError):
            baseline_skyline(make_relation([(1, 2)]))

    def test_toy_skyline(self, toy):
        result = baseline_skyline(toy)
        assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_ground_truth_with_perfect_crowd(self, seed):
        relation = generate_synthetic(
            60, 3, 1, Distribution.INDEPENDENT, seed=seed
        )
        result = baseline_skyline(relation)
        assert result.skyline == ground_truth_skyline(relation)

    def test_multi_crowd_attributes(self):
        relation = generate_synthetic(
            30, 2, 2, Distribution.INDEPENDENT, seed=4
        )
        result = baseline_skyline(relation)
        assert result.skyline == ground_truth_skyline(relation)

    def test_more_questions_than_crowdsky(self):
        baseline = baseline_skyline(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=5)
        )
        smart = crowdsky(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=5)
        )
        assert baseline.stats.questions > 2 * smart.stats.questions

    def test_serial_rounds_equal_questions(self, toy):
        result = baseline_skyline(figure1_dataset())
        assert result.stats.rounds == result.stats.questions

    def test_crowd_ranks_tie_grouping(self):
        relation = make_relation(
            [(1, 1), (2, 2), (3, 3)],
            [(5,), (5,), (9,)],
        )
        crowd = SimulatedCrowd(relation)
        ranks = crowd_ranks(relation, crowd, 0)
        assert ranks[0] == ranks[1] < ranks[2]


class TestUnarySkyline:
    def test_requires_crowd_attribute(self):
        with pytest.raises(CrowdSkyError):
            unary_skyline(make_relation([(1, 2)]))

    def test_perfect_crowd_exact(self, toy):
        result = unary_skyline(toy)
        assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)

    def test_one_round_per_crowd_attribute(self):
        relation = generate_synthetic(
            40, 2, 2, Distribution.INDEPENDENT, seed=6
        )
        result = unary_skyline(relation)
        assert result.stats.rounds == 2
        assert result.stats.questions == 80

    def test_noisy_estimates_reduce_accuracy(self):
        relation = generate_synthetic(
            200, 3, 1, Distribution.INDEPENDENT, seed=7
        )
        crowd = SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(accuracy=0.8, unary_sigma=0.3),
            voting=StaticVoting(5),
            seed=7,
        )
        result = unary_skyline(relation, crowd=crowd)
        report = precision_recall(result.skyline, relation)
        assert report.f1 < 1.0

    def test_worker_assignments_respect_omega(self, toy):
        crowd = SimulatedCrowd(
            toy, pool=WorkerPool.uniform(), voting=StaticVoting(5), seed=1
        )
        unary_skyline(toy, crowd=crowd, omega=3)
        assert crowd.stats.worker_assignments == 3 * len(toy)

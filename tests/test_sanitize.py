"""Tests for the runtime determinism sanitizer.

Covers, per the sanitizer contract (docs/static-analysis.md):

* each patched nondeterminism source is caught — wall clock, global
  ``random`` RNG, numpy's global RNG, ``os.urandom`` — with a stack
  attributed to the calling frame (file and function name);
* passthrough: patched functions return real values and behaviour is
  unchanged; everything is unpatched on exit;
* seeded instances (``random.Random(seed)``, ``default_rng(seed)``)
  pass through unwatched;
* ``allow_modules`` filtering, the nesting guard, ``check()`` /
  ``report()`` semantics, and advisory directory-listing notes.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.analysis.sanitize import (
    KIND_GLOBAL_RNG,
    KIND_NUMPY_GLOBAL_RNG,
    KIND_OS_URANDOM,
    KIND_WALL_CLOCK,
    DeterminismSanitizer,
    SanitizerViolations,
    sanitized,
)

pytestmark = pytest.mark.analysis


@pytest.fixture(autouse=True)
def _not_nested():
    """These tests manage their own sanitizer; under ``--repro-sanitize``
    (where the conftest plugin wraps every test in one) they would hit
    the nesting guard, so skip rather than fail."""
    if DeterminismSanitizer._active is not None:
        pytest.skip("an outer sanitizer is active (--repro-sanitize)")


def _touch_clock() -> float:
    return time.time()


def _touch_rng() -> float:
    return random.random()


def _touch_entropy() -> bytes:
    return os.urandom(4)


# -- catching, with attribution ----------------------------------------------


def test_wall_clock_is_caught_and_attributed_here():
    with DeterminismSanitizer() as sanitizer:
        value = _touch_clock()
    assert isinstance(value, float) and value > 0
    assert [v.kind for v in sanitizer.violations] == [KIND_WALL_CLOCK]
    violation = sanitizer.violations[0]
    assert violation.source == "time.time"
    assert violation.site is not None
    assert violation.site.filename == __file__
    assert violation.site.name == "_touch_clock"
    assert "time.time()" in (violation.site.line or "")


def test_global_rng_is_caught_and_attributed_here():
    with DeterminismSanitizer() as sanitizer:
        value = _touch_rng()
    assert 0.0 <= value < 1.0
    violation = sanitizer.violations[0]
    assert violation.kind == KIND_GLOBAL_RNG
    assert violation.source == "random.random"
    assert violation.site.filename == __file__
    assert violation.site.name == "_touch_rng"


def test_os_urandom_is_caught_and_attributed_here():
    with DeterminismSanitizer() as sanitizer:
        value = _touch_entropy()
    assert isinstance(value, bytes) and len(value) == 4
    violation = sanitizer.violations[0]
    assert violation.kind == KIND_OS_URANDOM
    assert violation.source == "os.urandom"
    assert violation.site.name == "_touch_entropy"


def test_numpy_global_rng_is_caught():
    with DeterminismSanitizer() as sanitizer:
        np.random.rand(2)
    assert [v.kind for v in sanitizer.violations] == [
        KIND_NUMPY_GLOBAL_RNG
    ]
    assert sanitizer.violations[0].source == "numpy.random.rand"


def test_render_and_stack_name_the_site():
    with DeterminismSanitizer() as sanitizer:
        _touch_clock()
    violation = sanitizer.violations[0]
    assert f"{__file__}:" in violation.render()
    stack = violation.render_stack()
    assert "_touch_clock" in stack
    assert "sanitize.py" not in stack.rsplit("\n", 3)[-2]


# -- what is deliberately not caught ------------------------------------------


def test_seeded_instances_pass_unwatched():
    with DeterminismSanitizer() as sanitizer:
        random.Random(7).random()
        np.random.default_rng(7).random()
        time.perf_counter()
    assert sanitizer.violations == []


# -- passthrough and lifecycle ------------------------------------------------


def test_patched_functions_delegate_to_the_real_ones():
    rng = random.Random(123)
    expected = [rng.random() for _ in range(3)]
    with DeterminismSanitizer():
        random.seed(123)
        got = [random.random() for _ in range(3)]
    assert got == expected  # same algorithm, same seed, same stream


def test_everything_is_unpatched_on_exit():
    originals = (time.time, random.random, os.urandom)
    with DeterminismSanitizer():
        assert time.time is not originals[0]
        assert hasattr(time.time, "_repro_sanitizer_original")
    assert (time.time, random.random, os.urandom) == originals


def test_unpatches_even_when_the_body_raises():
    original = time.time
    with pytest.raises(ValueError):
        with DeterminismSanitizer():
            raise ValueError("boom")
    assert time.time is original
    assert DeterminismSanitizer._active is None


def test_nesting_is_refused():
    with DeterminismSanitizer():
        with pytest.raises(RuntimeError, match="already active"):
            with DeterminismSanitizer():
                pass  # pragma: no cover - never entered
    assert DeterminismSanitizer._active is None


# -- filtering, check, report -------------------------------------------------


def test_allow_modules_drops_violations_by_path_fragment():
    with DeterminismSanitizer(
        allow_modules=("test_sanitize",)
    ) as sanitizer:
        _touch_clock()
    assert sanitizer.violations == []


def test_check_raises_with_a_counting_summary():
    with DeterminismSanitizer() as sanitizer:
        _touch_clock()
        _touch_rng()
    with pytest.raises(SanitizerViolations) as excinfo:
        sanitizer.check()
    assert "2 determinism violation(s)" in str(excinfo.value)
    assert "time.time" in str(excinfo.value)
    assert len(excinfo.value.violations) == 2


def test_check_and_report_on_a_clean_run():
    with DeterminismSanitizer() as sanitizer:
        sorted([3, 1, 2])
    sanitizer.check()  # does not raise
    assert sanitizer.report() == "determinism sanitizer: no violations"


def test_report_lists_each_violation():
    with DeterminismSanitizer() as sanitizer:
        _touch_clock()
    report = sanitizer.report()
    assert report.startswith(
        "determinism sanitizer: 1 violation(s), 0 advisory note(s)"
    )
    assert "time.time" in report


def test_sanitized_helper_returns_result_and_sanitizer():
    result, sanitizer = sanitized(_touch_entropy)
    assert isinstance(result, bytes)
    assert [v.kind for v in sanitizer.violations] == [KIND_OS_URANDOM]


def test_advisory_listings_are_notes_not_violations(tmp_path):
    with DeterminismSanitizer(advisory_listings=True) as sanitizer:
        os.listdir(tmp_path)
    assert sanitizer.violations == []
    assert [a.kind for a in sanitizer.advisories] == ["advisory_listing"]
    assert "[advisory]" in sanitizer.report()
    sanitizer.check()  # advisories never fail the run

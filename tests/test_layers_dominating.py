"""Tests for skyline layers, covering graphs and dominating sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import dominance_matrix, dominates
from repro.skyline.dominating import (
    FrequencyOracle,
    dominating_sets,
    evaluation_order,
    pair_frequency,
)
from repro.skyline.layers import covering_graph, skyline_layers

matrices = arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=3),
    ),
    elements=st.floats(min_value=0.0, max_value=1.0, width=32),
)


class TestSkylineLayers:
    def test_toy_layers_match_figure5(self, toy):
        layers = skyline_layers(toy.known_matrix())
        labelled = [sorted(toy.label(i) for i in layer) for layer in layers]
        assert labelled == [
            ["b", "e", "i", "l"],
            ["a", "d", "g", "k"],
            ["c", "f", "h"],
            ["j"],
        ]

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_layers_partition_all_tuples(self, data):
        layers = skyline_layers(data)
        flattened = sorted(i for layer in layers for i in layer)
        assert flattened == list(range(data.shape[0]))

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_first_layer_is_skyline(self, data):
        assert sorted(skyline_layers(data)[0]) == bnl_skyline(data)

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_no_dominance_within_a_layer(self, data):
        for layer in skyline_layers(data):
            for s in layer:
                for t in layer:
                    if s != t:
                        assert not dominates(data[s], data[t])


class TestCoveringGraph:
    def test_toy_covering_matches_table3(self, toy):
        cover = covering_graph(toy.known_matrix())
        expected = {
            "a": {"b"},
            "g": {"e"},
            "d": {"b", "e"},
            "k": {"i", "l"},
            "c": {"a", "e"},
            "f": {"a", "d"},
            "h": {"d", "g", "i"},
            "j": {"f", "h"},
        }
        for label, parents in expected.items():
            t = toy.index_of(label)
            assert {toy.label(s) for s in cover[t]} == parents

    def test_skyline_tuples_have_empty_cover(self, toy):
        cover = covering_graph(toy.known_matrix())
        for label in "beil":
            assert cover[toy.index_of(label)] == set()

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_cover_members_dominate_directly(self, data):
        matrix = dominance_matrix(data)
        cover = covering_graph(data)
        for t, parents in cover.items():
            for s in parents:
                assert matrix[s, t]
                # No intermediate: s dominates no other dominator of t.
                dominators = np.flatnonzero(matrix[:, t])
                assert not any(matrix[s, w] for w in dominators)


class TestDominatingSets:
    def test_toy_dominating_sets_match_table1(self, toy):
        ds = dominating_sets(toy.known_matrix())
        expected = {
            "a": {"b"},
            "c": {"a", "b", "e"},
            "d": {"b", "e"},
            "f": {"a", "b", "d", "e"},
            "g": {"e"},
            "h": {"b", "d", "e", "g", "i"},
            "j": {"a", "b", "d", "e", "f", "g", "h", "i"},
            "k": {"i", "l"},
        }
        for label, members in expected.items():
            t = toy.index_of(label)
            assert {toy.label(s) for s in ds[t]} == members

    def test_total_question_count_is_26(self, toy):
        """Example 3: Σ|DS(t)| = 26 for the toy dataset."""
        ds = dominating_sets(toy.known_matrix())
        assert sum(len(members) for members in ds) == 26

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_lemma3_monotonicity(self, data):
        """s ∈ DS(t) implies |DS(s)| < |DS(t)| (paper Lemma 3)."""
        ds = dominating_sets(data)
        for t, members in enumerate(ds):
            for s in members:
                assert len(ds[s]) < len(ds[t])

    def test_evaluation_order_matches_table2(self, toy):
        ds = dominating_sets(toy.known_matrix())
        order = [toy.label(t) for t in evaluation_order(ds)]
        # Empty-DS tuples (skyline) come first, then the Table 2 order.
        assert order[4:] == ["a", "g", "d", "k", "c", "f", "h", "j"]

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_evaluation_order_respects_dominance(self, data):
        ds = dominating_sets(data)
        order = evaluation_order(ds)
        position = {t: i for i, t in enumerate(order)}
        for t, members in enumerate(ds):
            for s in members:
                assert position[s] < position[t]


class TestFrequencyOracle:
    def test_pair_frequency_counts_co_domination(self, toy):
        matrix = dominance_matrix(toy.known_matrix())
        b, e = toy.index_of("b"), toy.index_of("e")
        # b dominates {a, c, d, f, h, j}; e dominates {c, d, f, g, h, j}:
        # co-dominated = {c, d, f, h, j}.
        assert pair_frequency(matrix, b, e) == 5

    def test_oracle_symmetric_and_cached(self, toy):
        oracle = FrequencyOracle(dominance_matrix(toy.known_matrix()))
        b, e = toy.index_of("b"), toy.index_of("e")
        assert oracle.freq(b, e) == oracle.freq(e, b) == 5

    def test_freq_matrix_matches_scalar(self, toy):
        matrix = dominance_matrix(toy.known_matrix())
        oracle = FrequencyOracle(matrix)
        members = [toy.index_of(x) for x in "bdei"]
        table = oracle.freq_matrix(members)
        for i, u in enumerate(members):
            for j, v in enumerate(members):
                if u != v:
                    assert table[i, j] == oracle.freq(u, v)

    def test_quantiles_monotone(self, small_independent):
        oracle = FrequencyOracle(
            dominance_matrix(small_independent.known_matrix())
        )
        low, high = oracle.quantiles([0.3, 0.7])
        assert low <= high

    def test_quantiles_empty_population(self):
        # Mutually incomparable data: nobody dominates anything.
        data = np.asarray([[float(i), float(9 - i)] for i in range(10)])
        oracle = FrequencyOracle(dominance_matrix(data))
        assert oracle.quantiles([0.3, 0.7]) == [0.0, 0.0]

"""Tests for the accuracy metrics."""

import pytest

from repro.metrics.accuracy import (
    AccuracyReport,
    ak_skyline,
    ground_truth_skyline,
    precision_recall,
)
from tests.conftest import make_relation


@pytest.fixture
def relation():
    """AK skyline = {0}; full skyline = {0, 1, 2}.

    Tuples 1, 2 are AK-dominated by 0 but resurface via the crowd
    attribute; tuple 3 is dominated everywhere.
    """
    return make_relation(
        [(1, 1), (2, 2), (3, 3), (4, 4)],
        [(4,), (2,), (1,), (5,)],
    )


class TestGroundTruth:
    def test_ak_skyline(self, relation):
        assert ak_skyline(relation) == {0}

    def test_full_skyline(self, relation):
        assert ground_truth_skyline(relation) == {0, 1, 2}


class TestPrecisionRecall:
    def test_perfect_prediction(self, relation):
        report = precision_recall({0, 1, 2}, relation)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_false_positive_lowers_precision(self, relation):
        report = precision_recall({0, 1, 2, 3}, relation)
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == 1.0

    def test_false_negative_lowers_recall(self, relation):
        report = precision_recall({0, 1}, relation)
        assert report.precision == 1.0
        assert report.recall == pytest.approx(1 / 2)

    def test_ak_skyline_not_counted(self, relation):
        """Only newly retrieved tuples matter (the paper's convention)."""
        report = precision_recall({0}, relation)
        assert report.predicted_new == 0
        assert report.precision == 1.0  # claimed nothing new
        assert report.recall == 0.0     # found nothing new

    def test_empty_truth_and_prediction(self):
        relation = make_relation(
            [(1, 1), (2, 2)],
            [(1,), (2,)],
        )
        # Tuple 1 dominated in AK and AC: truth_new is empty.
        report = precision_recall({0}, relation)
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_empty_truth_with_false_positive(self):
        relation = make_relation(
            [(1, 1), (2, 2)],
            [(1,), (2,)],
        )
        report = precision_recall({0, 1}, relation)
        assert report.precision == 0.0
        assert report.recall == 1.0

    def test_f1_zero_when_both_zero(self):
        report = AccuracyReport(
            precision=0.0, recall=0.0, predicted_new=1, truth_new=1
        )
        assert report.f1 == 0.0

    def test_f1_harmonic_mean(self):
        report = AccuracyReport(
            precision=0.5, recall=1.0, predicted_new=2, truth_new=1
        )
        assert report.f1 == pytest.approx(2 / 3)

"""Tests for the synthetic data generators (IND / ANT / COR)."""

import numpy as np
import pytest

from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import DataError


class TestDistributionParse:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("IND", Distribution.INDEPENDENT),
            ("ant", Distribution.ANTI_CORRELATED),
            ("Cor", Distribution.CORRELATED),
            ("INDEPENDENT", Distribution.INDEPENDENT),
        ],
    )
    def test_parse(self, text, expected):
        assert Distribution.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(DataError):
            Distribution.parse("zipf")


class TestGenerateSynthetic:
    @pytest.mark.parametrize("distribution", list(Distribution))
    def test_shapes(self, distribution):
        relation = generate_synthetic(30, 3, 2, distribution, seed=0)
        assert len(relation) == 30
        assert relation.known_matrix().shape == (30, 3)
        assert relation.latent_matrix().shape == (30, 2)

    @pytest.mark.parametrize("distribution", list(Distribution))
    def test_values_in_unit_interval(self, distribution):
        relation = generate_synthetic(200, 4, 1, distribution, seed=1)
        matrix = relation.known_matrix()
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)

    def test_seed_reproducibility(self):
        a = generate_synthetic(50, 3, 1, Distribution.INDEPENDENT, seed=5)
        b = generate_synthetic(50, 3, 1, Distribution.INDEPENDENT, seed=5)
        assert np.array_equal(a.known_matrix(), b.known_matrix())
        assert np.array_equal(a.latent_matrix(), b.latent_matrix())

    def test_different_seeds_differ(self):
        a = generate_synthetic(50, 3, 1, Distribution.INDEPENDENT, seed=5)
        b = generate_synthetic(50, 3, 1, Distribution.INDEPENDENT, seed=6)
        assert not np.array_equal(a.known_matrix(), b.known_matrix())

    def test_rng_and_seed_mutually_exclusive(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataError):
            generate_synthetic(
                10, 2, 1, Distribution.INDEPENDENT, seed=1, rng=rng
            )

    def test_explicit_rng(self):
        rng = np.random.default_rng(9)
        relation = generate_synthetic(
            10, 2, 1, Distribution.INDEPENDENT, rng=rng
        )
        assert len(relation) == 10

    @pytest.mark.parametrize(
        "n, k, m",
        [(0, 2, 1), (10, 0, 1), (10, 2, -1)],
    )
    def test_invalid_parameters(self, n, k, m):
        with pytest.raises(DataError):
            generate_synthetic(n, k, m, Distribution.INDEPENDENT, seed=0)

    def test_zero_crowd_attributes_allowed(self):
        relation = generate_synthetic(
            10, 2, 0, Distribution.INDEPENDENT, seed=0
        )
        assert relation.schema.num_crowd == 0

    def test_anti_correlated_rows_sum_to_plane(self):
        """ANT rows preserve the plane sum — the defining property."""
        relation = generate_synthetic(
            500, 4, 0, Distribution.ANTI_CORRELATED, seed=3
        )
        sums = relation.known_matrix().sum(axis=1)
        # Each row's sum equals d * v with v ~ N(0.5, 0.083): tight spread.
        assert abs(float(np.mean(sums)) - 2.0) < 0.1
        assert float(np.std(sums)) < 0.5

    def test_anti_correlated_negative_pairwise_correlation(self):
        relation = generate_synthetic(
            2000, 2, 0, Distribution.ANTI_CORRELATED, seed=4
        )
        matrix = relation.known_matrix()
        corr = float(np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1])
        assert corr < -0.3

    def test_correlated_positive_pairwise_correlation(self):
        relation = generate_synthetic(
            2000, 2, 0, Distribution.CORRELATED, seed=4
        )
        matrix = relation.known_matrix()
        corr = float(np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1])
        assert corr > 0.3

    def test_independent_near_zero_correlation(self):
        relation = generate_synthetic(
            2000, 2, 0, Distribution.INDEPENDENT, seed=4
        )
        matrix = relation.known_matrix()
        corr = float(np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1])
        assert abs(corr) < 0.1

    def test_anti_correlated_has_larger_skyline(self):
        """The motivating fact of §3.4: ANT skylines are much larger."""
        from repro.skyline.bnl import bnl_skyline

        ind = generate_synthetic(400, 2, 0, Distribution.INDEPENDENT, seed=8)
        ant = generate_synthetic(
            400, 2, 0, Distribution.ANTI_CORRELATED, seed=8
        )
        assert len(bnl_skyline(ant.known_matrix())) > len(
            bnl_skyline(ind.known_matrix())
        )

    def test_single_dimension_ant_falls_back(self):
        relation = generate_synthetic(
            20, 1, 0, Distribution.ANTI_CORRELATED, seed=2
        )
        assert relation.known_matrix().shape == (20, 1)

"""Model-based tests: the preference graph against a brute-force model,
and paper-grounded invariants over full execution traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.crowdsky import crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.preference import PreferenceGraph
from repro.crowd.questions import Preference
from repro.data.synthetic import Distribution, generate_synthetic
from repro.skyline.dominating import dominating_sets

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL

_N = 7


class _ClosureModel:
    """Brute-force reference: accepted answers + Floyd-Warshall closure."""

    def __init__(self, n):
        self.n = n
        # strict[u][v]: u preferred; equal via union-find by set merging.
        self.strict = np.zeros((n, n), dtype=bool)
        self.groups = [{i} for i in range(n)]

    def _group(self, x):
        for group in self.groups:
            if x in group:
                return group
        raise AssertionError

    def _close(self):
        for k in range(self.n):
            self.strict |= np.outer(
                self.strict[:, k], self.strict[k, :]
            )

    def relation(self, u, v):
        if self._group(u) is self._group(v):
            return E
        if self.strict[u, v]:
            return L
        if self.strict[v, u]:
            return R
        return None

    def add(self, u, v, answer):
        """Mirror PreferenceGraph.add_answer under KEEP_FIRST."""
        known = self.relation(u, v)
        if known is not None:
            return known is answer
        if answer is E:
            gu, gv = self._group(u), self._group(v)
            merged = gu | gv
            self.groups = [
                g for g in self.groups if g is not gu and g is not gv
            ]
            self.groups.append(merged)
            # Members of a class share all strict edges.
            members = sorted(merged)
            self.strict[np.ix_(members, range(self.n))] = self.strict[
                members
            ].any(axis=0)
            self.strict[np.ix_(range(self.n), members)] = self.strict[
                :, members
            ].any(axis=1)[:, None]
            self._close()
            return True
        src, dst = (u, v) if answer is L else (v, u)
        for a in sorted(self._group(src)):
            for b in sorted(self._group(dst)):
                self.strict[a, b] = True
        self._close()
        return True


class PreferenceGraphMachine(RuleBasedStateMachine):
    """Random answer sequences: graph and model must always agree."""

    def __init__(self):
        super().__init__()
        self.graph = PreferenceGraph(_N)
        self.model = _ClosureModel(_N)

    @rule(
        u=st.integers(0, _N - 1),
        v=st.integers(0, _N - 1),
        answer=st.sampled_from([L, R, E]),
    )
    def add_answer(self, u, v, answer):
        if u == v:
            return
        accepted_graph = self.graph.add_answer(u, v, answer)
        accepted_model = self.model.add(u, v, answer)
        assert accepted_graph == accepted_model

    @invariant()
    def relations_agree(self):
        for u in range(_N):
            for v in range(_N):
                if u != v:
                    assert self.graph.relation(u, v) == self.model.relation(
                        u, v
                    ), (u, v)


PreferenceGraphMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestPreferenceGraphModel = PreferenceGraphMachine.TestCase


class TestTraceInvariants:
    """Paper-grounded invariants over complete execution traces."""

    @pytest.mark.parametrize(
        "algorithm", [crowdsky, parallel_dset, parallel_sl]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_question_is_ds_justified(self, algorithm, seed):
        """Lemma 1 + §3.4: every asked pair is either a dominating-set
        question (one side dominates the other in AK) or a probe (both
        sides share membership in some tuple's dominating set)."""
        relation = generate_synthetic(
            70, 3, 1, Distribution.INDEPENDENT, seed=seed
        )
        ds = dominating_sets(relation.known_matrix())
        result = algorithm(relation)
        for _, question, _ in result.question_log:
            u, v = question.left, question.right
            is_ds_question = u in ds[v] or v in ds[u]
            shares_target = any(
                u in members and v in members for members in ds
            )
            assert is_ds_question or shares_target, (u, v)

    @pytest.mark.parametrize(
        "algorithm", [crowdsky, parallel_dset, parallel_sl]
    )
    def test_no_question_repeats(self, algorithm):
        relation = generate_synthetic(
            70, 3, 1, Distribution.INDEPENDENT, seed=3
        )
        result = algorithm(relation)
        keys = [question.key() for _, question, _ in result.question_log]
        assert len(keys) == len(set(keys))

    def test_serial_round_numbers_increase_by_one(self):
        relation = generate_synthetic(
            50, 3, 1, Distribution.INDEPENDENT, seed=4
        )
        result = crowdsky(relation)
        rounds = [entry[0] for entry in result.question_log]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_parallel_round_numbers_non_decreasing(self):
        relation = generate_synthetic(
            50, 3, 1, Distribution.INDEPENDENT, seed=4
        )
        result = parallel_sl(relation)
        rounds = [entry[0] for entry in result.question_log]
        assert rounds == sorted(rounds)

"""Observability layer: tracer, metrics, exporters, schema, logging.

Covers:

* tracer structure — span nesting, parent ids, event/span pairing —
  checked against the trace schema validator,
* the metrics registry (counters, gauges, labelled series, histograms)
  and its Prometheus text round-trip,
* the ``observe`` scope: trace/metrics files written, per-round question
  counts in the trace summing exactly to the exported counter and to
  ``CrowdStats`` (the acceptance identity),
* results preferring the attached registry over legacy ``CrowdStats``
  fields, and wall-clock stamping under an active trace,
* seeded determinism: same seed + same fault plan => identical event
  sequences modulo timestamps (Hypothesis, reusing ``tests/strategies``),
* the no-op guarantee and an emission-overhead smoke test,
* the stdlib-logging helper and the ``crowdsky trace`` CLI round-trip.
"""

from __future__ import annotations

import logging
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.crowdsky import crowdsky
from repro.core.parallel import parallel_sl
from repro.core.result import CrowdSkylineResult
from repro.crowd.faults import FaultPlan
from repro.crowd.platform import CrowdStats, SimulatedCrowd
from repro.data.toy import figure1_dataset
from repro.exceptions import ObservabilityError, TraceSchemaError
from repro.experiments.cli import main as cli_main
from repro.obs import (
    Observation,
    Tracer,
    current_observation,
    install,
    observe,
    parse_prometheus_text,
    read_trace_jsonl,
    summarize_trace,
    uninstall,
    write_trace_jsonl,
)
from repro.obs import metrics as M
from repro.obs.logging import (
    LEVEL_ENV_VAR,
    configure_logging,
    get_logger,
    level_from_env,
)
from repro.obs.schema import (
    check_metrics_consistency,
    trace_totals,
    validate_events,
    validate_jsonl,
)
from tests.strategies import (
    ROBUSTNESS_SETTINGS,
    fault_plans,
    retry_policies,
    small_crowd_relations,
)

pytestmark = pytest.mark.obs


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_event_attribution(self):
        tracer = Tracer()
        with tracer.span("outer", n=3) as outer:
            tracer.event("hello", x=1)
            with tracer.span("inner") as inner:
                tracer.event("deep")
        assert validate_events(tracer.events) == []
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == [
            "span_start", "event", "span_start", "event",
            "span_end", "span_end",
        ]
        hello, deep = tracer.events[1], tracer.events[3]
        assert hello["span"] == outer.span_id
        assert deep["span"] == inner.span_id
        start_inner = tracer.events[2]
        assert start_inner["parent"] == outer.span_id
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_span_records_error_flag(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.events[-1]["attrs"] == {"error": True}
        assert validate_events(tracer.events) == []

    def test_timestamps_monotonic_and_relative(self):
        tracer = Tracer()
        for i in range(5):
            tracer.event("tick", i=i)
        stamps = [e["ts"] for e in tracer.events]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_value_and_total(self):
        registry = M.MetricsRegistry()
        registry.counter(M.FAULTS_INJECTED, kind="spam").inc()
        registry.counter(M.FAULTS_INJECTED, kind="spam").inc(2)
        registry.counter(M.FAULTS_INJECTED, kind="timeout").inc()
        assert registry.value(M.FAULTS_INJECTED, kind="spam") == 3
        assert registry.total(M.FAULTS_INJECTED) == 4

    def test_histogram_buckets(self):
        registry = M.MetricsRegistry()
        hist = registry.histogram(
            M.ROUND_SIZE, buckets=M.ROUND_SIZE_BUCKETS
        )
        for size in (1, 3, 3, 150):
            hist.observe(size)
        snapshot = registry.snapshot()
        assert snapshot[M.ROUND_SIZE + "_count"] == 4
        assert snapshot[M.ROUND_SIZE + "_sum"] == 157
        assert snapshot[M.ROUND_SIZE + '_bucket{le="1.0"}'] == 1
        assert snapshot[M.ROUND_SIZE + '_bucket{le="+Inf"}'] == 4

    def test_prometheus_round_trip(self):
        registry = M.MetricsRegistry()
        registry.counter(M.QUESTIONS_ASKED).inc(17)
        registry.counter(M.PHASE_SECONDS, phase="evaluate").inc(0.25)
        registry.gauge(M.MEAN_VOTES_PER_QUESTION).set(5)
        text = registry.to_prometheus()
        assert "# TYPE crowdsky_questions_asked_total counter" in text
        values = parse_prometheus_text(text)
        assert values[M.QUESTIONS_ASKED] == 17
        assert values[M.PHASE_SECONDS + '{phase="evaluate"}'] == 0.25
        assert values[M.MEAN_VOTES_PER_QUESTION] == 5


# ---------------------------------------------------------------------------
# observe(): files, consistency, results
# ---------------------------------------------------------------------------


class TestObserve:
    def test_disabled_by_default(self):
        observation = current_observation()
        assert not observation.enabled
        result = crowdsky(figure1_dataset())
        assert current_observation().tracer.events == []
        assert result.wall_time_s is None
        # run-local accounting is on regardless of the global switch
        assert result.metrics is not None
        assert result.metrics.total(M.QUESTIONS_ASKED) == (
            result.stats.questions
        )

    def test_observed_run_writes_consistent_artifacts(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run.prom"
        with observe(
            trace_path=str(trace_path), metrics_path=str(metrics_path)
        ) as observation:
            result = crowdsky(figure1_dataset())
        assert validate_jsonl(str(trace_path)) == []
        events = read_trace_jsonl(str(trace_path))
        totals = trace_totals(events)
        # the acceptance identity: trace == exported counter == stats
        assert totals["questions"] == result.stats.questions
        assert totals["rounds"] == result.stats.rounds
        values = parse_prometheus_text(metrics_path.read_text())
        assert check_metrics_consistency(events, values) == []
        assert values[M.QUESTIONS_ASKED] == result.stats.questions
        # derived gauge finalized on exit
        assert values[M.MEAN_VOTES_PER_QUESTION] == pytest.approx(
            observation.metrics.total(M.WORKER_ASSIGNMENTS)
            / result.stats.questions
        )
        assert result.wall_time_s is not None
        assert f"wall={result.wall_time_s:.3f}s" in result.summary()
        summary = summarize_trace(events)
        assert "crowd.round" in summary and "phase.evaluate" in summary

    def test_phase_seconds_accounted(self):
        with observe() as observation:
            parallel_sl(figure1_dataset())
        phases = {
            dict(series.labels).get("phase")
            for series in observation.metrics.series()
            if series.name == M.PHASE_SECONDS
        }
        assert {"build_context", "evaluate"} <= phases

    def test_install_uninstall_lifo(self):
        first, second = Observation(), Observation()
        install(first)
        install(second)
        with pytest.raises(ObservabilityError):
            uninstall(first)
        uninstall(second)
        uninstall(first)
        assert not current_observation().enabled

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0}\nnot json\n')
        with pytest.raises(TraceSchemaError):
            read_trace_jsonl(str(path))


class TestResultReporting:
    def test_summary_prefers_registry_over_stats(self):
        registry = M.MetricsRegistry()
        registry.counter(M.RETRIES).inc(4)
        registry.counter(M.TIMEOUTS).inc(1)
        result = CrowdSkylineResult(
            skyline={0}, stats=CrowdStats(), metrics=registry
        )
        assert "retries=4 timeouts=1" in result.summary()

    def test_faulted_run_reports_from_metrics(self):
        toy = figure1_dataset()
        crowd = SimulatedCrowd(
            toy, seed=0,
            faults=FaultPlan(hit_timeout_rate=0.3, seed=3),
        )
        result = crowdsky(toy, crowd=crowd)
        assert result.metrics is crowd.metrics
        assert result.metrics.total(M.FAULTS_INJECTED) == (
            crowd.fault_stats.total_events()
        )
        if result.metrics.total(M.TIMEOUTS):
            assert "timeouts=" in result.summary()
            assert all("retried" in row for row in result.round_table(toy))


# ---------------------------------------------------------------------------
# Determinism and overhead
# ---------------------------------------------------------------------------


def _normalized(events):
    # "ts" and "cpu" are the two wall/CPU clock stamps; everything else
    # (ids, names, attrs) must replay identically.
    return [
        {
            key: value
            for key, value in event.items()
            if key not in ("ts", "cpu")
        }
        for event in events
    ]


class TestDeterminism:
    @ROBUSTNESS_SETTINGS
    @given(
        relation=small_crowd_relations(),
        plan_kwargs=fault_plans(),
        policy=retry_policies(),
    )
    def test_same_seed_same_fault_plan_same_trace(
        self, relation, plan_kwargs, policy
    ):
        traces = []
        for _ in range(2):
            crowd = SimulatedCrowd(
                relation, seed=17,
                faults=FaultPlan(**plan_kwargs), retry=policy,
            )
            with observe() as observation:
                crowdsky(relation, crowd=crowd)
            traces.append(_normalized(observation.tracer.events))
        assert traces[0] == traces[1]


class TestMetricsMergeProperty:
    @ROBUSTNESS_SETTINGS
    @given(data=st.data())
    def test_dump_absorb_roundtrips_buckets_in_any_merge_order(self, data):
        """Folding worker registries into a parent (dump → absorb) must
        reproduce the exact histogram a single registry would have
        built, whatever the merge order. Values are dyadic rationals so
        even the float sums stay bit-exact."""
        observations = st.tuples(
            st.integers(0, 4096).map(lambda i: i / 1024.0),
            st.sampled_from(["hit", "miss", "corrupt"]),
        )
        chunks = data.draw(
            st.lists(
                st.lists(observations, max_size=12),
                min_size=1,
                max_size=5,
            )
        )

        def build(registry, chunk):
            for value, status in chunk:
                registry.histogram(
                    M.SWEEP_CACHE_LOOKUP_SECONDS,
                    buckets=M.LATENCY_BUCKETS_S,
                    status=status,
                ).observe(value)

        expected = M.MetricsRegistry()
        dumps = []
        for chunk in chunks:
            build(expected, chunk)
            worker = M.MetricsRegistry()
            build(worker, chunk)
            dumps.append(worker.dump())

        order = data.draw(st.permutations(range(len(dumps))))
        merged = M.MetricsRegistry()
        for index in order:
            merged.absorb(dumps[index])
        assert merged.snapshot() == expected.snapshot()


class TestOverhead:
    def test_noop_emission_is_cheap(self):
        """Guarded emission (the hot-path pattern) must stay a constant
        few attribute reads when observability is off."""
        iterations = 200_000
        start = time.perf_counter()
        for _ in range(iterations):
            observation = current_observation()
            if observation.enabled:  # pragma: no cover - off in this test
                observation.tracer.event("never")
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0  # generous: ~5µs per guarded site
        assert current_observation().tracer.events == []


# ---------------------------------------------------------------------------
# Logging helper
# ---------------------------------------------------------------------------


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("crowd").name == "repro.crowd"
        assert get_logger("repro.crowd.platform").name == (
            "repro.crowd.platform"
        )

    def test_level_from_env(self, monkeypatch):
        monkeypatch.delenv(LEVEL_ENV_VAR, raising=False)
        assert level_from_env() == logging.WARNING
        monkeypatch.setenv(LEVEL_ENV_VAR, "debug")
        assert level_from_env() == logging.DEBUG
        monkeypatch.setenv(LEVEL_ENV_VAR, "15")
        assert level_from_env() == 15
        monkeypatch.setenv(LEVEL_ENV_VAR, "bogus")
        assert level_from_env() == logging.WARNING

    def test_configure_logging_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            configure_logging(logging.INFO)
            configure_logging(logging.DEBUG)
            streams = [
                h for h in logger.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
            assert logger.level == logging.DEBUG
        finally:
            logger.handlers = before
            logger.setLevel(logging.NOTSET)


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------


class TestCli:
    def test_traced_run_validates_and_summarizes(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.prom")
        assert cli_main([
            "run", "table3", "--scale", "smoke",
            "--trace", trace_path, "--metrics", metrics_path,
        ]) == 0
        assert cli_main([
            "trace", "validate", trace_path, "--metrics", metrics_path,
        ]) == 0
        assert "ok:" in capsys.readouterr().out
        assert cli_main(["trace", "summarize", trace_path]) == 0
        assert "== trace summary ==" in capsys.readouterr().out

    def test_validate_flags_corrupted_trace(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.event("crowd.round", round=1)  # missing required attrs
        path = str(tmp_path / "bad.jsonl")
        write_trace_jsonl(tracer.events, path)
        assert cli_main(["trace", "validate", path]) == 1
        assert "invalid:" in capsys.readouterr().err

"""Tests for question/answer formats."""

import pytest

from repro.crowd.questions import PairwiseQuestion, Preference, UnaryQuestion


class TestPreference:
    def test_flip_left_right(self):
        assert Preference.LEFT.flipped() is Preference.RIGHT
        assert Preference.RIGHT.flipped() is Preference.LEFT

    def test_flip_equal_stable(self):
        assert Preference.EQUAL.flipped() is Preference.EQUAL

    def test_opposite_is_flip(self):
        for preference in Preference:
            assert preference.opposite() is preference.flipped()

    def test_double_flip_identity(self):
        for preference in Preference:
            assert preference.flipped().flipped() is preference


class TestPairwiseQuestion:
    def test_requires_distinct_tuples(self):
        with pytest.raises(ValueError):
            PairwiseQuestion(3, 3)

    def test_key_symmetric(self):
        assert PairwiseQuestion(2, 7, 1).key() == PairwiseQuestion(7, 2, 1).key()

    def test_key_distinguishes_attributes(self):
        assert PairwiseQuestion(2, 7, 0).key() != PairwiseQuestion(2, 7, 1).key()

    def test_canonical_orders_left_right(self):
        question = PairwiseQuestion(7, 2, 1).canonical()
        assert (question.left, question.right) == (2, 7)

    def test_canonical_noop_when_ordered(self):
        question = PairwiseQuestion(2, 7)
        assert question.canonical() is question

    def test_repr_mentions_pair(self):
        assert "(2, 7)" in repr(PairwiseQuestion(2, 7))

    def test_hashable_for_caching(self):
        assert len({PairwiseQuestion(1, 2), PairwiseQuestion(1, 2)}) == 1


class TestUnaryQuestion:
    def test_fields(self):
        question = UnaryQuestion(4, 1)
        assert question.tuple_index == 4
        assert question.attribute == 1

    def test_repr(self):
        assert "u(4)" in repr(UnaryQuestion(4))

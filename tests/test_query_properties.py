"""Property-based tests for the query language (round-trip + fuzzing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Direction
from repro.exceptions import QueryError
from repro.query.ast import Comparison
from repro.query.lexer import tokenize
from repro.query.parser import parse_query

identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "SELECT", "FROM", "WHERE", "AND", "SKYLINE", "OF", "MIN", "MAX",
        "WITH", "CROWD",
    }
)
numbers = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 3))
operators = st.sampled_from(list(Comparison))
directions = st.sampled_from([Direction.MIN, Direction.MAX])


@st.composite
def queries(draw):
    """Generate a random well-formed query and its expected structure."""
    table = draw(identifiers)
    conditions = draw(
        st.lists(st.tuples(identifiers, operators, numbers), max_size=3)
    )
    skyline = draw(
        st.lists(st.tuples(identifiers, directions), max_size=3)
    )
    crowd_hint = draw(st.booleans()) and bool(skyline)

    text = f"SELECT * FROM {table}"
    if conditions:
        text += " WHERE " + " AND ".join(
            f"{name} {op.value} {value}" for name, op, value in conditions
        )
    if skyline:
        text += " SKYLINE OF " + ", ".join(
            f"{name} {direction.value.upper()}"
            for name, direction in skyline
        )
        if crowd_hint:
            text += " WITH CROWD"
    return text, table, conditions, skyline, crowd_hint


class TestQueryRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(queries())
    def test_generated_queries_parse_to_their_structure(self, generated):
        text, table, conditions, skyline, crowd_hint = generated
        query = parse_query(text)
        assert query.table == table
        assert len(query.where.conditions) == len(conditions)
        for parsed, (name, op, value) in zip(
            query.where.conditions, conditions
        ):
            assert parsed.attribute == name
            assert parsed.op is op
            assert parsed.literal == pytest.approx(value)
        assert [s.attribute for s in query.skyline] == [
            name for name, _ in skyline
        ]
        assert [s.direction for s in query.skyline] == [
            direction for _, direction in skyline
        ]
        assert query.crowd_hint == crowd_hint

    @settings(max_examples=100, deadline=None)
    @given(queries())
    def test_tokenization_is_lossless_for_identifiers(self, generated):
        text, table, *_ = generated
        values = [token.value for token in tokenize(text)]
        assert table in values


class TestQueryFuzzing:
    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """Garbage input raises QueryError (or parses) — never anything
        else."""
        try:
            parse_query(text)
        except QueryError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        st.text(
            alphabet="SELCTFROMWHND*<>=.,'\" abc123_",
            max_size=80,
        )
    )
    def test_sql_flavoured_garbage(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass

"""Tests for majority voting and the two assignment policies (§5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.questions import PairwiseQuestion, Preference
from repro.crowd.voting import (
    DynamicVoting,
    StaticVoting,
    majority_vote,
)
from repro.exceptions import CrowdPlatformError
from repro.skyline.dominance import dominance_matrix
from repro.skyline.dominating import FrequencyOracle

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL


class TestMajorityVote:
    @pytest.mark.parametrize(
        "votes, expected",
        [
            ([L, L, L], L),
            ([R, R, L], R),
            ([L, L, R, R, R], R),
            ([E, E, L], E),
            ([L, R, E], E),       # strict tie resolves to EQUAL
            ([L, L, R, R], E),    # even split resolves to EQUAL
            ([L], L),
            ([E], E),
            ([L, L, E, E, E], E),
            ([L, L, L, E, E], L),
        ],
    )
    def test_aggregation(self, votes, expected):
        assert majority_vote(votes) is expected

    def test_empty_votes_rejected(self):
        with pytest.raises(CrowdPlatformError):
            majority_vote([])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([L, R, E]), min_size=1, max_size=9))
    def test_symmetry(self, votes):
        """Flipping every vote flips the aggregate."""
        flipped = [vote.flipped() for vote in votes]
        assert majority_vote(flipped) is majority_vote(votes).flipped()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([L, R, E]), min_size=1, max_size=9))
    def test_winner_has_plurality(self, votes):
        winner = majority_vote(votes)
        counts = {p: votes.count(p) for p in Preference}
        if winner is not E:
            assert counts[winner] > counts[winner.flipped()]


class TestStaticVoting:
    def test_constant_assignment(self):
        policy = StaticVoting(5)
        assert policy.workers_for(PairwiseQuestion(0, 1)) == 5
        assert policy.workers_for(PairwiseQuestion(4, 9)) == 5

    def test_omega_validated(self):
        with pytest.raises(CrowdPlatformError):
            StaticVoting(0)

    def test_repr(self):
        assert "5" in repr(StaticVoting(5))


class TestDynamicVoting:
    @pytest.fixture
    def frequency(self, toy):
        return FrequencyOracle(dominance_matrix(toy.known_matrix()))

    def test_thresholds_validated(self, frequency):
        with pytest.raises(CrowdPlatformError):
            DynamicVoting(frequency, alpha=5.0, beta=1.0)
        with pytest.raises(CrowdPlatformError):
            DynamicVoting(frequency, omega=1)

    def test_three_bands(self, toy, frequency):
        policy = DynamicVoting(frequency, omega=5, alpha=2.0, beta=5.0)
        b, e = toy.index_of("b"), toy.index_of("e")
        i, l = toy.index_of("i"), toy.index_of("l")
        # freq(b, e) = 5 -> most important band.
        assert policy.workers_for(PairwiseQuestion(b, e)) == 7
        # freq(i, l) = |{k}| = 1 -> least important band.
        assert policy.workers_for(PairwiseQuestion(i, l)) == 3

    def test_middle_band_gets_omega(self, toy, frequency):
        policy = DynamicVoting(frequency, omega=5, alpha=1.0, beta=5.0)
        i, l = toy.index_of("i"), toy.index_of("l")
        assert policy.workers_for(PairwiseQuestion(i, l)) == 5

    def test_never_below_one_worker(self, toy, frequency):
        policy = DynamicVoting(frequency, omega=3, alpha=100.0, beta=200.0)
        assert policy.workers_for(PairwiseQuestion(0, 1)) >= 1

    def test_from_frequency_thresholds_ordered(self, frequency):
        policy = DynamicVoting.from_frequency(frequency)
        assert policy.alpha <= policy.beta

    def test_repr(self, frequency):
        assert "DynamicVoting" in repr(DynamicVoting.from_frequency(frequency))

    def test_expected_workers_close_to_static(self, small_independent):
        """§6.1 fairness: dynamic assigns about as many workers overall."""
        frequency = FrequencyOracle(
            dominance_matrix(small_independent.known_matrix())
        )
        policy = DynamicVoting.from_frequency(frequency, omega=5)
        n = len(small_independent)
        assignments = [
            policy.workers_for(PairwiseQuestion(u, v))
            for u in range(n)
            for v in range(u + 1, n)
        ]
        mean = sum(assignments) / len(assignments)
        assert 3.0 <= mean <= 7.0

"""Unit tests for the relation model (schema, tuples, canonicalization)."""

import numpy as np
import pytest

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)
from repro.exceptions import DataError, SchemaError, UnknownAttributeError


class TestAttribute:
    def test_defaults_known_min(self):
        attr = Attribute("price")
        assert attr.is_known
        assert not attr.is_crowd
        assert attr.direction is Direction.MIN

    def test_crowd_attribute(self):
        attr = Attribute("romantic", AttributeKind.CROWD, Direction.MAX)
        assert attr.is_crowd
        assert not attr.is_known

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_frozen(self):
        attr = Attribute("x")
        with pytest.raises(AttributeError):
            attr.name = "y"


class TestSchema:
    def test_simple_builder(self):
        schema = Schema.simple(3, 2)
        assert schema.num_known == 3
        assert schema.num_crowd == 2
        assert [a.name for a in schema.known_attributes] == ["A1", "A2", "A3"]
        assert [a.name for a in schema.crowd_attributes] == ["C1", "C2"]

    def test_simple_rejects_negative(self):
        with pytest.raises(SchemaError):
            Schema.simple(-1, 0)

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("x"), Attribute("x")])

    def test_attribute_lookup(self):
        schema = Schema.simple(2, 1)
        assert schema.attribute("A2").name == "A2"
        with pytest.raises(UnknownAttributeError):
            schema.attribute("missing")

    def test_contains_len_iter(self):
        schema = Schema.simple(2, 1)
        assert "A1" in schema
        assert "nope" not in schema
        assert len(schema) == 3
        assert [a.name for a in schema] == ["A1", "A2", "C1"]

    def test_equality_and_hash(self):
        assert Schema.simple(2, 1) == Schema.simple(2, 1)
        assert Schema.simple(2, 1) != Schema.simple(1, 2)
        assert hash(Schema.simple(2, 0)) == hash(Schema.simple(2, 0))

    def test_repr_mentions_partitions(self):
        text = repr(Schema.simple(1, 1))
        assert "AK" in text and "AC" in text


class TestTuple:
    def test_values_coerced_to_float(self):
        row = Tuple(known=(1, 2), latent=(3,))
        assert row.known == (1.0, 2.0)
        assert row.latent == (3.0,)

    def test_label_in_repr(self):
        assert "movie" in repr(Tuple(known=(1,), label="movie"))

    def test_default_latent_empty(self):
        assert Tuple(known=(1,)).latent == ()


class TestRelation:
    def _schema(self):
        return Schema(
            [
                Attribute("a", AttributeKind.KNOWN, Direction.MIN),
                Attribute("b", AttributeKind.KNOWN, Direction.MAX),
                Attribute("c", AttributeKind.CROWD, Direction.MAX),
            ]
        )

    def test_arity_checked(self):
        with pytest.raises(DataError):
            Relation(self._schema(), [Tuple(known=(1,), latent=(1,))])

    def test_latent_arity_checked(self):
        with pytest.raises(DataError):
            Relation(self._schema(), [Tuple(known=(1, 2), latent=(1, 2))])

    def test_known_matrix_negates_max_attributes(self):
        relation = Relation(
            self._schema(), [Tuple(known=(1, 2), latent=(3,))]
        )
        matrix = relation.known_matrix()
        assert matrix.shape == (1, 2)
        assert matrix[0, 0] == 1.0
        assert matrix[0, 1] == -2.0  # MAX canonicalized by negation

    def test_latent_matrix_negates_max_attributes(self):
        relation = Relation(
            self._schema(), [Tuple(known=(1, 2), latent=(3,))]
        )
        assert relation.latent_matrix()[0, 0] == -3.0

    def test_latent_matrix_requires_latents(self):
        relation = Relation(self._schema(), [Tuple(known=(1, 2))])
        with pytest.raises(DataError):
            relation.latent_matrix()

    def test_labels_and_index_of(self):
        relation = Relation(
            self._schema(),
            [
                Tuple(known=(1, 2), latent=(1,), label="x"),
                Tuple(known=(3, 4), latent=(2,)),
            ],
        )
        assert relation.label(0) == "x"
        assert relation.label(1) == "t1"
        assert relation.index_of("x") == 0
        with pytest.raises(DataError):
            relation.index_of("missing")

    def test_subset_reindexes(self):
        relation = Relation(
            self._schema(),
            [
                Tuple(known=(i, i), latent=(i,), label=f"r{i}")
                for i in range(5)
            ],
        )
        sub = relation.subset([3, 1])
        assert len(sub) == 2
        assert sub.label(0) == "r3"
        assert sub.label(1) == "r1"

    def test_iteration_and_getitem(self):
        relation = Relation(
            self._schema(), [Tuple(known=(1, 2), latent=(3,))]
        )
        assert list(relation)[0] is relation[0]

    def test_known_matrix_cached(self, toy):
        assert toy.known_matrix() is toy.known_matrix()

    def test_matrix_values_match_tuples(self, toy):
        matrix = toy.known_matrix()
        for i, row in enumerate(toy):
            assert tuple(matrix[i]) == row.known  # all-MIN toy schema

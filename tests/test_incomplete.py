"""Tests for the [12]-style probabilistic skyline subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError
from repro.incomplete import (
    IncompleteRelation,
    SelectionPolicy,
    lofi_skyline,
    skyline_probabilities,
)
from repro.incomplete.probability import sample_completions
from repro.incomplete.selection import (
    _influence_scores,
    _undecided_pair_matrix,
    select_cell,
)
from repro.skyline.dominance import skyline_mask


@pytest.fixture
def truth(rng):
    return rng.random((40, 3))


@pytest.fixture
def relation(truth):
    return IncompleteRelation.mask_random_cells(truth, 0.25, seed=5)


class TestIncompleteRelation:
    def test_shapes_validated(self):
        with pytest.raises(DataError):
            IncompleteRelation(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_truth_must_be_complete(self):
        observed = np.asarray([[1.0, np.nan]])
        truth = np.asarray([[1.0, np.nan]])
        with pytest.raises(DataError):
            IncompleteRelation(observed, truth)

    def test_observed_must_agree_with_truth(self):
        observed = np.asarray([[1.0, 2.0]])
        truth = np.asarray([[1.0, 3.0]])
        with pytest.raises(DataError):
            IncompleteRelation(observed, truth)

    def test_mask_random_cells_rate(self, truth):
        relation = IncompleteRelation.mask_random_cells(truth, 0.5, seed=0)
        rate = relation.num_missing / truth.size
        assert 0.3 < rate < 0.7

    def test_mask_rate_validated(self, truth):
        with pytest.raises(DataError):
            IncompleteRelation.mask_random_cells(truth, 1.5, seed=0)

    def test_fill_only_missing(self, relation):
        row, col = relation.missing_cells()[0]
        relation.fill(row, col, 0.5)
        with pytest.raises(DataError):
            relation.fill(row, col, 0.7)

    def test_fill_reduces_missing(self, relation):
        before = relation.num_missing
        row, col = relation.missing_cells()[0]
        relation.fill(row, col, 0.5)
        assert relation.num_missing == before - 1

    def test_bounds_cover_known_values(self, relation):
        low, high = relation.attribute_bounds()
        observed = relation.observed
        for j in range(relation.d):
            column = observed[:, j]
            known = column[~np.isnan(column)]
            if known.size:
                assert low[j] <= known.min()
                assert high[j] >= known.max()

    def test_bounds_degenerate_attribute(self):
        observed = np.asarray([[np.nan], [np.nan]])
        truth = np.asarray([[0.3], [0.7]])
        relation = IncompleteRelation(observed, truth)
        low, high = relation.attribute_bounds()
        assert high[0] > low[0]

    def test_observed_returns_copy(self, relation):
        matrix = relation.observed
        matrix[:] = 0.0
        assert relation.num_missing > 0  # original untouched


class TestProbabilities:
    def test_complete_relation_gives_binary(self, truth):
        relation = IncompleteRelation(truth, truth)
        probabilities = skyline_probabilities(relation, seed=1)
        assert set(np.unique(probabilities)) <= {0.0, 1.0}
        expected = skyline_mask(truth).astype(float)
        assert np.array_equal(probabilities, expected)

    def test_probabilities_in_unit_interval(self, relation):
        probabilities = skyline_probabilities(relation, samples=50, seed=2)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_known_dominated_tuple_has_zero_probability(self):
        # Tuple 1 is dominated by tuple 0 on fully-known values.
        observed = np.asarray([[0.1, 0.1], [0.9, 0.9], [np.nan, 0.5]])
        truth = np.asarray([[0.1, 0.1], [0.9, 0.9], [0.4, 0.5]])
        relation = IncompleteRelation(observed, truth)
        probabilities = skyline_probabilities(relation, samples=80, seed=3)
        assert probabilities[1] == 0.0
        assert probabilities[0] == 1.0

    def test_samples_validated(self, relation):
        with pytest.raises(DataError):
            skyline_probabilities(relation, samples=0)

    def test_completions_respect_known_cells(self, relation):
        rng = np.random.default_rng(4)
        completions = sample_completions(relation, 10, rng)
        observed = relation.observed
        known = ~np.isnan(observed)
        for k in range(10):
            assert np.allclose(completions[k][known], observed[known])
            assert not np.isnan(completions[k]).any()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_seed_reproducibility(self, seed):
        truth = np.random.default_rng(0).random((15, 2))
        a = skyline_probabilities(
            IncompleteRelation.mask_random_cells(truth, 0.3, seed=1),
            samples=30, seed=seed,
        )
        b = skyline_probabilities(
            IncompleteRelation.mask_random_cells(truth, 0.3, seed=1),
            samples=30, seed=seed,
        )
        assert np.array_equal(a, b)


class TestSelection:
    def test_undecided_matrix_excludes_proven_non_dominance(self):
        observed = np.asarray([[0.9, np.nan], [0.1, 0.2]])
        undecided = _undecided_pair_matrix(observed)
        # 0 is strictly worse than 1 on the known attribute: 0 can never
        # dominate 1, so (0, 1) is decided; (1, 0) remains open.
        assert not undecided[0, 1]
        assert undecided[1, 0]

    def test_influence_scores_only_on_missing_cells(self, relation):
        scores = _influence_scores(relation)
        observed = relation.observed
        assert np.all(scores[~np.isnan(observed)] == 0.0)

    def test_select_requires_missing(self, truth):
        relation = IncompleteRelation(truth, truth)
        with pytest.raises(DataError):
            select_cell(relation, SelectionPolicy.RANDOM,
                        np.random.default_rng(0))

    @pytest.mark.parametrize("policy", list(SelectionPolicy))
    def test_selected_cell_is_missing(self, relation, policy):
        cell = select_cell(relation, policy, np.random.default_rng(1))
        assert np.isnan(relation.observed[cell])


class TestLofiSkyline:
    def test_full_budget_perfect_workers_exact(self, truth):
        relation = IncompleteRelation.mask_random_cells(truth, 0.3, seed=6)
        result = lofi_skyline(relation, budget=10_000, worker_sigma=0.0,
                              seed=7)
        expected = set(np.nonzero(skyline_mask(truth))[0].astype(int))
        assert result.skyline == expected
        assert result.remaining_missing == 0

    def test_budget_respected(self, truth):
        relation = IncompleteRelation.mask_random_cells(truth, 0.5, seed=6)
        result = lofi_skyline(relation, budget=7, seed=8)
        assert result.questions_asked == 7
        assert len(result.asked_cells) == 7

    def test_zero_budget_pure_probabilistic(self, truth):
        relation = IncompleteRelation.mask_random_cells(truth, 0.3, seed=6)
        result = lofi_skyline(relation, budget=0, seed=9)
        assert result.questions_asked == 0
        assert result.remaining_missing == relation.num_missing

    def test_negative_budget_rejected(self, relation):
        with pytest.raises(DataError):
            lofi_skyline(relation, budget=-1)

    def test_threshold_validated(self, relation):
        with pytest.raises(DataError):
            lofi_skyline(relation, budget=1, threshold=0.0)

    @pytest.mark.parametrize("policy", list(SelectionPolicy))
    def test_all_policies_run(self, truth, policy):
        relation = IncompleteRelation.mask_random_cells(truth, 0.3, seed=6)
        result = lofi_skyline(relation, budget=10, policy=policy, seed=10)
        assert result.questions_asked == 10

    def test_informed_policies_beat_random_on_average(self):
        """The headline of [12]: smart question selection buys accuracy."""
        rng = np.random.default_rng(11)
        wins = {SelectionPolicy.INFLUENCE: 0.0, SelectionPolicy.RANDOM: 0.0}
        for trial in range(6):
            truth = rng.random((50, 3))
            expected = set(np.nonzero(skyline_mask(truth))[0].astype(int))
            for policy in wins:
                relation = IncompleteRelation.mask_random_cells(
                    truth, 0.3, seed=trial
                )
                result = lofi_skyline(
                    relation, budget=15, policy=policy,
                    worker_sigma=0.0, seed=trial,
                )
                correct = len(result.skyline & expected)
                union = len(result.skyline | expected) or 1
                wins[policy] += correct / union
        assert wins[SelectionPolicy.INFLUENCE] >= wins[SelectionPolicy.RANDOM]

    def test_noisy_workers_leave_residual_error_possible(self, truth):
        relation = IncompleteRelation.mask_random_cells(truth, 0.4, seed=6)
        result = lofi_skyline(
            relation, budget=10_000, worker_sigma=0.4, seed=12
        )
        # With heavy noise the filled values differ from truth; the
        # result is a valid set but need not equal the true skyline.
        assert result.skyline <= set(range(relation.n))

"""Coverage floor for the preference core (no external coverage dep).

The preference closure is the hottest and most correctness-critical
code in the repository, so its test coverage is enforced as a tier-1
gate: ``repro/core/preference.py`` must keep **≥ 95 % branch and line
coverage** under the in-process exercise below. The container ships no
``coverage``/``pytest-cov``, so this module implements a small
measurement harness itself:

* ``sys.settrace`` records executed lines, line-to-line arcs and
  return lines restricted to the target module;
* executable lines come from the functions' code objects
  (``co_lines``), recursively including comprehensions;
* branch sites are the module's ``if``/``while``/``for`` *statements*
  (from the AST); an outcome counts as covered when its entry line ran
  (body / explicit else) or an arc left the condition (implicit else /
  loop exhaustion). Single-line conditionals, ternaries and
  short-circuit operators are outside the model — the module avoids
  them on purpose.

If this test fails after editing ``preference.py``, either extend
``_exercise()`` below (preferred) or you removed behaviour the suite
still expects.
"""

import ast
import inspect
import sys
import types
from typing import Dict, List, Set, Tuple

import pytest

import repro.core.preference as pref
from repro.core.preference import (
    BACKEND_NAMES,
    BitsetPreferenceGraph,
    ContradictionPolicy,
    NumpyPreferenceGraph,
    PreferenceGraph,
    PreferenceSystem,
    ReferencePreferenceGraph,
    _BasePreferenceGraph,
    _iter_bits,
    default_backend,
)
from repro.crowd.questions import Preference
from repro.exceptions import CrowdSkyError, PreferenceConflictError
from repro.obs import observe
from repro.obs.metrics import CLOSURE_BATCH_SIZE, MetricsRegistry

pytestmark = pytest.mark.pref

FLOOR = 0.95
L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------


def _module_codes() -> List[types.CodeType]:
    """All function/method code objects of the target module,
    including nested comprehension/generator code."""
    codes: List[types.CodeType] = []
    seen: Set[types.CodeType] = set()

    def add(code: types.CodeType) -> None:
        if code in seen or code.co_filename != pref.__file__:
            return
        seen.add(code)
        codes.append(code)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                add(const)

    def add_member(member) -> None:
        if inspect.isfunction(member):
            add(member.__code__)
        elif isinstance(member, property):
            for accessor in (member.fget, member.fset, member.fdel):
                if accessor is not None:
                    add(accessor.__code__)
        elif isinstance(member, (classmethod, staticmethod)):
            add(member.__func__.__code__)

    for obj in vars(pref).values():
        if inspect.isfunction(obj) and obj.__module__ == pref.__name__:
            add(obj.__code__)
        elif inspect.isclass(obj) and obj.__module__ == pref.__name__:
            for member in vars(obj).values():
                add_member(member)
    return codes


def _executable_lines() -> Set[int]:
    lines: Set[int] = set()
    for code in _module_codes():
        for _, _, line in code.co_lines():
            if line is not None and line > 0:
                lines.add(line)
    return lines


class _BranchSite:
    def __init__(self, node, parent_body, index):
        self.kind = type(node).__name__.lower()
        self.lineno = node.lineno
        self.end_lineno = node.end_lineno
        # Lines on which the condition/iterator is (re)evaluated.
        self.cond_lines = set(
            range(node.lineno, node.body[0].lineno)
        ) or {node.lineno}
        self.body_entry = node.body[0].lineno
        self.else_entry = node.orelse[0].lineno if node.orelse else None


def _branch_sites() -> List[_BranchSite]:
    tree = ast.parse(inspect.getsource(pref))
    sites: List[_BranchSite] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.For)):
            sites.append(_BranchSite(node, None, None))
    return sites


def _trace(fn) -> Tuple[Set[int], Set[Tuple[int, int]], Set[int]]:
    """Run ``fn`` recording (executed lines, arcs, return lines) inside
    the target module only."""
    target = pref.__file__
    executed: Set[int] = set()
    arcs: Set[Tuple[int, int]] = set()
    returns: Set[int] = set()
    prev: Dict[int, int] = {}

    def tracer(frame, event, arg):
        if frame.f_code.co_filename != target:
            return None
        if event == "call":
            # the call event fires on the ``def`` line, which co_lines
            # also reports as executable
            executed.add(frame.f_lineno)
            return tracer
        key = id(frame)
        if event == "line":
            line = frame.f_lineno
            executed.add(line)
            last = prev.get(key)
            if last is not None:
                arcs.add((last, line))
            prev[key] = line
        elif event == "return":
            returns.add(frame.f_lineno)
            prev.pop(key, None)
        return tracer

    old = sys.gettrace()
    sys.settrace(tracer)
    try:
        fn()
    finally:
        sys.settrace(old)
    return executed, arcs, returns


def _outcomes(site, executed, arcs, returns) -> Tuple[int, int]:
    """(covered, total) outcomes for one branch site."""
    total = 2
    covered = 0
    if site.body_entry in executed:
        covered += 1
    if site.else_entry is not None:
        if site.else_entry in executed:
            covered += 1
    else:
        # Implicit else / loop exhaustion: an arc must leave the
        # condition lines past the construct (or return right there).
        left = any(
            src in site.cond_lines
            and (dst < site.lineno or dst > site.end_lineno)
            for src, dst in arcs
        )
        if left or (site.cond_lines & returns):
            covered += 1
    return covered, total


# ---------------------------------------------------------------------------
# The exercise: every behaviour of the module, all three backends
# ---------------------------------------------------------------------------


def _exercise_graph(backend):
    graph = PreferenceGraph(8, backend=backend)
    # direct answers, all three kinds, both orientations
    assert graph.add_answer(0, 1, L)
    assert graph.add_answer(2, 1, R)  # reversed edge 1 -> 2
    assert graph.add_answer(3, 4, E)
    # transitivity and flipped queries
    assert graph.relation(0, 2) is L
    assert graph.relation(2, 0) is R
    assert graph.relation(3, 4) is E
    assert graph.relation(5, 6) is None
    assert graph.relation(6, 6) is E
    assert graph.knows(0, 1) and not graph.knows(5, 6)
    # consistent repeat, contradiction, tie-vs-strict contradiction
    assert graph.add_answer(0, 2, L)
    assert not graph.add_answer(2, 0, L)
    assert not graph.add_answer(0, 1, E)
    assert graph.rejected_answers == 2
    # tie merge with outgoing, incoming and fresh classes
    assert graph.add_answer(5, 6, L)  # 5 has out-edge
    assert graph.add_answer(4, 5, E)  # drop=5 carries out-edge, keep=3-class
    assert graph.relation(3, 6) is L  # inherited through the merge
    assert graph.add_answer(7, 0, L)  # 0 gains an incoming edge
    assert graph.add_answer(0, 3, E)  # merged classes with in+out edges
    assert graph.relation(7, 6) is L  # 7 -> {0,3,4,5} -> 6
    assert graph.relation(6, 7) is R
    assert sorted(graph.edges())
    assert graph.class_of(4) == graph.class_of(5)
    # RAISE policy
    strict = PreferenceGraph(
        3, policy=ContradictionPolicy.RAISE, backend=backend
    )
    strict.add_answer(0, 1, L)
    with pytest.raises(PreferenceConflictError):
        strict.add_answer(0, 1, R)
    return graph


def _exercise_reference_internals():
    graph = ReferencePreferenceGraph(6)
    graph._invalidate(0)  # empty-cache early return
    graph.add_answer(0, 1, L)
    graph.add_answer(1, 2, L)
    graph.add_answer(4, 5, L)
    assert graph.descendants(0) == {1, 2}
    assert graph.descendants(4) == {5}
    # exact invalidation: a new edge below 2 must not clear 4's cache
    assert 4 in graph._descendants
    graph.add_answer(2, 3, L)
    assert 4 in graph._descendants and 0 not in graph._descendants
    assert graph.descendants(0) == {1, 2, 3}
    # diamond: DFS re-visits a node already in the cache
    graph = ReferencePreferenceGraph(4)
    for u, v in ((0, 1), (0, 2), (1, 3), (2, 3)):
        graph.add_answer(u, v, L)
    assert graph.descendants(0) == {1, 2, 3}
    # merge invalidation plus whitebox guards (never hit via public API)
    graph.add_answer(1, 2, E)
    assert graph.relation(0, 3) is L
    assert graph._union(1, 2) == graph.class_of(1)
    assert graph._reaches(1, 1) is False


def _exercise_bitset_internals():
    graph = BitsetPreferenceGraph(8)
    graph.add_answer(0, 1, L)
    graph.add_answer(1, 2, L)
    assert graph.descendants_bits(0) == 0b110
    assert graph.ancestors_bits(2) == 0b011
    assert graph.tie_class_bits(0) == 0b001
    # merge with both ancestors and descendants to propagate
    graph.add_answer(3, 4, L)  # separate chain: 3 -> 4
    graph.add_answer(1, 3, E)  # merge {1} and {3}: above={0}, below={2,4}
    assert graph.relation(0, 4) is L
    assert graph.relation(4, 0) is R
    assert graph.tie_class_bits(1) == graph.tie_class_bits(3)
    # merge of two isolated nodes: empty above/below
    graph.add_answer(5, 6, E)
    assert graph.relation(5, 6) is E
    assert graph.descendants_bits(5) == 0
    assert list(_iter_bits(0b10110)) == [1, 2, 4]
    assert list(_iter_bits(0)) == []
    assert graph._union(5, 6) == graph.class_of(5)  # no-op re-union guard
    # _reaches is shadowed by the O(1) relation() override but remains
    # the documented backend hook — keep it honest
    assert graph._reaches(0, 2) and not graph._reaches(2, 0)


def _exercise_numpy_internals():
    # > 64 nodes so the packed rows span two uint64 words
    graph = NumpyPreferenceGraph(70)
    graph.add_answer(0, 1, L)
    graph.add_answer(1, 65, L)  # closure bit in the second word
    assert graph.relation(0, 65) is L
    assert graph.relation(65, 0) is R
    assert graph.relation(0, 2) is None
    # merge with both ancestors and descendants to broadcast
    graph.add_answer(3, 4, L)
    graph.add_answer(1, 3, E)  # merge {1} and {3}: above={0}, below={65,4}
    assert graph.relation(0, 4) is L
    assert graph.relation(3, 3) is E
    # merge of two isolated nodes: empty broadcast on both sides
    graph.add_answer(5, 6, E)
    assert graph.relation(5, 6) is E
    # the documented backend hook, including the refresh sentinel
    assert graph._reaches(0, 65) and not graph._reaches(65, 0)
    assert graph._reaches(0, -1) is False
    # bulk kernels
    assert list(graph.find_roots([0, 1, 3, 4])) == [0, 1, 1, 4]
    assert list(
        graph.relations_batch([0, 65, 5, 7], [65, 0, 6, 8])
    ) == [1, 2, 3, 0]
    assert list(
        graph.reachable_pairs([0, 65, 7], [65, 0, 8])
    ) == [True, False, False]
    mask = graph.undominated_mask()
    assert bool(mask[0]) and not bool(mask[65]) and bool(mask[7])
    # degenerate empty graph: no identity bits, empty mask
    empty = NumpyPreferenceGraph(0)
    assert empty.undominated_mask().size == 0


def _exercise_transactions(backend):
    system = PreferenceSystem(8, 2, backend=backend)
    registry = MetricsRegistry()
    system.attach_metrics(registry)
    assert system.apply_verdicts([]) == 0
    # list input, one contradicting verdict rejected mid-batch
    assert system.apply_verdicts(
        [(0, 1, 0, L), (1, 2, 0, L), (2, 0, 0, L)]
    ) == 2
    # generator input
    assert system.apply_verdicts(iter([(0, 1, 1, E)])) == 1
    histogram = registry.histogram(CLOSURE_BATCH_SIZE)
    assert histogram.count == 2 and histogram.sum == 4.0
    # under an active observation both registries record the batch
    with observe() as observation:
        assert system.apply_verdicts([(3, 4, 0, L)]) == 1
        assert system.resolve_pairs([(3, 4)])[(3, 4)] == (L, None)
    assert observation.metrics.histogram(CLOSURE_BATCH_SIZE).count == 1
    assert registry.histogram(CLOSURE_BATCH_SIZE).count == 3
    # without an attached registry only the observation path records
    bare = PreferenceSystem(4, 1, backend=backend)
    assert bare.apply_verdicts([(0, 1, 0, L)]) == 1


def _exercise_base_hooks():
    base = _BasePreferenceGraph(3)
    with pytest.raises(NotImplementedError):
        base._reaches(0, 1)
    with pytest.raises(NotImplementedError):
        base._add_edge(0, 1)
    with pytest.raises(NotImplementedError):
        base._merge_closure(0, 1)


def _exercise_backend_selection(monkeypatch):
    monkeypatch.delenv(pref.BACKEND_ENV_VAR, raising=False)
    assert default_backend() == "numpy"
    assert isinstance(PreferenceGraph(2), NumpyPreferenceGraph)
    monkeypatch.setenv(pref.BACKEND_ENV_VAR, "Reference")
    assert default_backend() == "reference"
    assert isinstance(PreferenceGraph(2), ReferencePreferenceGraph)
    monkeypatch.setenv(pref.BACKEND_ENV_VAR, "bitset")
    assert isinstance(PreferenceGraph(2), BitsetPreferenceGraph)
    monkeypatch.setenv(pref.BACKEND_ENV_VAR, "nope")
    with pytest.raises(CrowdSkyError):
        default_backend()
    with pytest.raises(CrowdSkyError):
        PreferenceGraph(2, backend="nope")
    monkeypatch.delenv(pref.BACKEND_ENV_VAR, raising=False)


def _exercise_system(backend):
    with pytest.raises(ValueError):
        PreferenceSystem(4, 0)
    system = PreferenceSystem(8, 2, backend=backend)
    assert system.num_attributes == 2
    system.add_answer(0, 1, 0, L)
    # memo: miss then hit, then invalidation by a new answer
    assert system.pair_relations(0, 1) == (L, None)
    assert system.pair_relations(1, 0) == (R, None)
    hits = system.cache_hits
    assert system.pair_relations(0, 1) == (L, None)
    assert system.cache_hits > hits
    system.add_answer(0, 1, 1, E)
    assert system.relation(0, 1, 1) is E
    assert system.fully_known(0, 1) and not system.fully_known(0, 2)
    assert system.unknown_attributes(0, 2) == [0, 1]
    assert system.weakly_prefers_all(0, 1)
    assert not system.weakly_prefers_all(1, 0)
    assert not system.weakly_prefers_all(0, 2)
    assert system.ac_dominates(0, 1)
    assert not system.ac_dominates(1, 0)  # RIGHT on attribute 0
    assert not system.ac_dominates(0, 2)  # unknown
    system.add_answer(3, 4, 0, E)
    system.add_answer(3, 4, 1, E)
    assert system.ac_equal(3, 4) and not system.ac_equal(0, 1)
    assert not system.ac_dominates(3, 4)  # weak everywhere, strict nowhere
    assert system.cannot_dominate(1, 0)
    assert not system.cannot_dominate(0, 1)
    resolved = system.resolve_pairs([(0, 1), (0, 1), (3, 4)])
    assert resolved[(0, 1)] == (L, E)
    # rejected answers aggregate across attributes
    system.add_answer(0, 1, 0, R)
    assert system.total_rejected() == 1
    assert system.closure_updates() > 0
    # sky_ac: trivial, dominated, tied and incomparable members
    assert system.sky_ac([5]) == [5]
    system.add_answer(5, 6, 0, L)
    system.add_answer(5, 6, 1, R)  # 5, 6 certainly incomparable
    assert system.sky_ac([0, 1, 3, 4, 5, 6]) == [0, 3, 5, 6]
    # single-attribute systems: generic path (reference) vs fast path
    single = PreferenceSystem(8, 1, backend=backend)
    single.add_answer(0, 1, 0, L)
    single.add_answer(1, 2, 0, L)
    single.add_answer(3, 4, 0, E)
    single.add_answer(6, 5, 0, E)
    assert single.sky_ac([0, 1, 2, 3, 4, 7]) == [0, 3, 7]
    assert single.sky_ac([2, 4, 3]) == [2, 3]
    assert single.sky_ac([5, 6]) == [5]
    assert single.sky_ac([6, 7]) == [6, 7]


def _run_exercise(monkeypatch):
    for backend in BACKEND_NAMES:
        _exercise_graph(backend)
        _exercise_system(backend)
        _exercise_transactions(backend)
    _exercise_reference_internals()
    _exercise_bitset_internals()
    _exercise_numpy_internals()
    _exercise_base_hooks()
    _exercise_backend_selection(monkeypatch)


# ---------------------------------------------------------------------------
# The floor
# ---------------------------------------------------------------------------


def test_preference_core_coverage_floor(monkeypatch):
    executed, arcs, returns = _trace(lambda: _run_exercise(monkeypatch))

    executable = _executable_lines()
    missed_lines = sorted(executable - executed)
    line_cov = 1 - len(missed_lines) / len(executable)

    covered = total = 0
    missed_branches = []
    for site in _branch_sites():
        got, want = _outcomes(site, executed, arcs, returns)
        covered += got
        total += want
        if got < want:
            missed_branches.append((site.kind, site.lineno))
    branch_cov = covered / total

    assert line_cov >= FLOOR, (
        f"line coverage {line_cov:.1%} < {FLOOR:.0%} on "
        f"repro/core/preference.py; missed lines: {missed_lines}"
    )
    assert branch_cov >= FLOOR, (
        f"branch coverage {branch_cov:.1%} < {FLOOR:.0%} on "
        f"repro/core/preference.py; partial sites: {missed_branches}"
    )


def test_exercise_runs_untraced(monkeypatch):
    """The exercise itself must stay green without the tracer (so a
    coverage regression is distinguishable from a behaviour bug)."""
    _run_exercise(monkeypatch)

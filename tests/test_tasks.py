"""Tests for the per-tuple evaluation state machine."""

import pytest

from repro.core.preference import PreferenceSystem
from repro.core.tasks import (
    PairRequest,
    TaskOutcome,
    TaskState,
    TupleTask,
)
from repro.crowd.questions import Preference
from repro.skyline.dominance import dominance_matrix
from repro.skyline.dominating import FrequencyOracle

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL


@pytest.fixture
def toy_env(toy):
    matrix = dominance_matrix(toy.known_matrix())
    prefs = PreferenceSystem(len(toy), 1)
    frequency = FrequencyOracle(matrix)
    return toy, prefs, frequency


def make_task(toy_env, label, ds_labels, **flags):
    toy, prefs, frequency = toy_env
    t = toy.index_of(label)
    ds = [toy.index_of(x) for x in ds_labels]
    return TupleTask(t, ds, prefs, frequency, **flags), toy, prefs


class TestLifecycle:
    def test_must_activate_before_advancing(self, toy_env):
        task, _, _ = make_task(toy_env, "a", ["b"])
        with pytest.raises(RuntimeError):
            task.advance()

    def test_double_activation_rejected(self, toy_env):
        task, _, _ = make_task(toy_env, "a", ["b"])
        task.activate(set())
        with pytest.raises(RuntimeError):
            task.activate(set())

    def test_empty_ds_completes_as_skyline(self, toy_env):
        task, _, _ = make_task(toy_env, "a", [])
        task.activate(set())
        assert task.advance() is None
        assert task.outcome is TaskOutcome.SKYLINE


class TestAskingPhase:
    def test_single_member_asks_one_pair(self, toy_env):
        task, toy, prefs = make_task(toy_env, "a", ["b"])
        task.activate(set())
        request = task.advance()
        assert (request.left, request.right) == (
            toy.index_of("b"), toy.index_of("a")
        )
        assert request.dominance_check

    def test_dominated_after_answer(self, toy_env):
        task, toy, prefs = make_task(toy_env, "a", ["b"])
        task.activate(set())
        request = task.advance()
        prefs.add_answer(request.left, request.right, 0, L)  # b preferred
        assert task.advance() is None
        assert task.outcome is TaskOutcome.NON_SKYLINE

    def test_survives_all_members(self, toy_env):
        task, toy, prefs = make_task(toy_env, "f", ["b", "e"])
        task.activate(set())
        while True:
            request = task.advance()
            if request is None:
                break
            # f is most preferred in A3: it wins every question.
            prefs.add_answer(request.left, request.right, 0, R)
        assert task.outcome is TaskOutcome.SKYLINE

    def test_equal_answer_dominates(self, toy_env):
        """s =_AC t with s ≺_AK t makes t a non-skyline tuple."""
        task, toy, prefs = make_task(toy_env, "a", ["b"])
        task.activate(set())
        request = task.advance()
        prefs.add_answer(request.left, request.right, 0, E)
        assert task.advance() is None
        assert task.outcome is TaskOutcome.NON_SKYLINE

    def test_early_break_skips_remaining(self, toy_env):
        task, toy, prefs = make_task(
            toy_env, "j", ["b", "e", "f"], use_p3=False
        )
        task.activate(set())
        request = task.advance()
        assert request.right == toy.index_of("j")
        prefs.add_answer(request.left, request.right, 0, L)  # lost at once
        assert task.advance() is None
        assert task.outcome is TaskOutcome.NON_SKYLINE


class TestPruningFlags:
    def test_p1_removes_complete_non_skyline(self, toy_env):
        task, toy, prefs = make_task(toy_env, "c", ["a", "b", "e"])
        task.activate({toy.index_of("a")})
        assert toy.index_of("a") not in task.dominating_set

    def test_p1_disabled_keeps_everyone(self, toy_env):
        task, toy, prefs = make_task(
            toy_env, "c", ["a", "b", "e"], use_p1=False, use_p2=False,
            use_p3=False,
        )
        task.activate({toy.index_of("a")})
        assert toy.index_of("a") in task.dominating_set

    def test_p2_reduces_to_sky_ac(self, toy_env):
        task, toy, prefs = make_task(toy_env, "d", ["b", "e"])
        prefs.add_answer(toy.index_of("e"), toy.index_of("b"), 0, L)
        task.activate(set())
        assert task.dominating_set == [toy.index_of("e")]

    def test_forced_requests_without_p2(self, toy_env):
        """DSet/P1 variants ask even transitively derivable pairs."""
        task, toy, prefs = make_task(
            toy_env, "d", ["b", "e"], use_p2=False, use_p3=False,
        )
        b, e, d = (toy.index_of(x) for x in "bed")
        prefs.add_answer(e, b, 0, L)
        prefs.add_answer(e, d, 0, L)  # derivable: d loses to e
        task.activate(set())
        request = task.advance()
        assert request is not None and request.force

    def test_dset_variant_stops_on_completion(self, toy_env):
        """Even without P1/P2/P3 a complete tuple stops asking
        (Definition 4 applies to every variant)."""
        task, toy, prefs = make_task(
            toy_env, "d", ["b", "e"],
            use_p1=False, use_p2=False, use_p3=False,
        )
        task.activate(set())
        asked = 0
        while True:
            request = task.advance()
            if request is None:
                break
            asked += 1
            prefs.add_answer(request.left, request.right, 0, L)  # d loses
        assert asked == 1
        assert task.outcome is TaskOutcome.NON_SKYLINE

    def test_dset_variant_asks_all_when_surviving(self, toy_env):
        """A surviving tuple must still beat every DS member."""
        task, toy, prefs = make_task(
            toy_env, "f", ["a", "b", "d", "e"],
            use_p1=False, use_p2=False, use_p3=False,
        )
        task.activate(set())
        asked = 0
        while True:
            request = task.advance()
            if request is None:
                break
            asked += 1
            prefs.add_answer(request.left, request.right, 0, R)  # f wins
        assert asked == 4
        assert task.outcome is TaskOutcome.SKYLINE


class TestProbingPhase:
    def test_probe_pairs_before_questions(self, toy_env):
        task, toy, prefs = make_task(toy_env, "d", ["b", "e"])
        task.activate(set())
        request = task.advance()
        b, e = toy.index_of("b"), toy.index_of("e")
        assert {request.left, request.right} == {b, e}

    def test_probe_answer_removes_loser(self, toy_env):
        task, toy, prefs = make_task(toy_env, "d", ["b", "e"])
        task.activate(set())
        request = task.advance()
        e = toy.index_of("e")
        winner_is_left = request.left == e
        prefs.add_answer(
            request.left, request.right, 0, L if winner_is_left else R
        )
        request = task.advance()
        # Now in the asking phase against the surviving member e.
        assert task.state is TaskState.ASKING
        assert request.left == e

    def test_probe_tie_keeps_one_member(self, toy_env):
        task, toy, prefs = make_task(toy_env, "d", ["b", "e"])
        task.activate(set())
        request = task.advance()
        prefs.add_answer(request.left, request.right, 0, E)
        task.advance()
        assert len(task.dominating_set) == 1

    def test_probe_skipped_without_p3(self, toy_env):
        task, toy, prefs = make_task(toy_env, "d", ["b", "e"], use_p3=False)
        task.activate(set())
        request = task.advance()
        assert request.right == toy.index_of("d")  # directly in Q(t)

    def test_probe_order_by_descending_frequency(self, toy_env):
        task, toy, prefs = make_task(toy_env, "j", ["b", "e", "i"])
        b, e, i = (toy.index_of(x) for x in "bei")
        pairs = task._sorted_probe_pairs([b, e, i])
        # freq(b,e)=5 > freq(e,i)=2 > freq(b,i)=2 (tie broken by index).
        frequency = toy_env[2]
        freqs = [frequency.freq(u, v) for u, v in pairs]
        assert freqs == sorted(freqs, reverse=True)


class TestMultiAttribute:
    def test_incomparable_members_both_survive_probing(self, multi_crowd):
        prefs = PreferenceSystem(len(multi_crowd), 2)
        matrix = dominance_matrix(multi_crowd.known_matrix())
        frequency = FrequencyOracle(matrix)
        task = TupleTask(0, [1, 2], prefs, frequency)
        prefs.add_answer(1, 2, 0, L)
        prefs.add_answer(1, 2, 1, R)  # incomparable in AC
        task.activate(set())
        request = task.advance()
        # Probing cannot reduce {1, 2}; both must be asked against 0.
        assert task.state is TaskState.ASKING
        assert len(task.dominating_set) == 2

"""Tests for the simulated crowd platform (rounds, caching, cost)."""

import numpy as np
import pytest

from repro.crowd.platform import CrowdStats, SimulatedCrowd
from repro.crowd.questions import PairwiseQuestion, Preference, UnaryQuestion
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.exceptions import BudgetExhaustedError, CrowdPlatformError


@pytest.fixture
def crowd(toy):
    return SimulatedCrowd(toy)


class TestCrowdStats:
    def test_record_round(self):
        stats = CrowdStats()
        stats.record_round(3, 15)
        stats.record_round(2, 10)
        assert stats.questions == 5
        assert stats.rounds == 2
        assert stats.worker_assignments == 25
        assert stats.round_sizes == [3, 2]

    def test_hit_cost_formula(self):
        """§6.2: cost = 0.02 · 5 · Σ ⌈|Qi|/5⌉."""
        stats = CrowdStats()
        stats.record_round(7, 35)   # 2 HITs
        stats.record_round(5, 25)   # 1 HIT
        stats.record_round(1, 5)    # 1 HIT
        assert stats.hit_cost() == pytest.approx(0.02 * 5 * 4)

    def test_assignment_cost(self):
        stats = CrowdStats()
        stats.record_round(2, 12)
        assert stats.assignment_cost() == pytest.approx(0.24)

    def test_merge(self):
        a, b = CrowdStats(), CrowdStats()
        a.record_round(2, 10)
        b.record_round(3, 15)
        merged = a.merge(b)
        assert merged.questions == 5
        assert merged.rounds == 2
        assert merged.round_sizes == [2, 3]


class TestSimulatedCrowd:
    def test_seed_or_rng_not_both(self, toy):
        with pytest.raises(CrowdPlatformError):
            SimulatedCrowd(toy, rng=np.random.default_rng(0), seed=1)

    def test_perfect_crowd_truthful(self, toy, crowd):
        f, j = toy.index_of("f"), toy.index_of("j")
        assert crowd.ask_pairwise(PairwiseQuestion(f, j)) is Preference.LEFT
        assert crowd.ask_pairwise(PairwiseQuestion(j, f)) is Preference.RIGHT

    def test_answers_cached_across_orientations(self, toy, crowd):
        f, j = toy.index_of("f"), toy.index_of("j")
        crowd.ask_pairwise(PairwiseQuestion(f, j))
        assert crowd.stats.questions == 1
        crowd.ask_pairwise(PairwiseQuestion(j, f))
        assert crowd.stats.questions == 1  # served from cache
        assert crowd.stats.cached_hits >= 1

    def test_cached_answer_none_before_asking(self, crowd):
        assert crowd.cached_answer(PairwiseQuestion(0, 1)) is None

    def test_round_merges_duplicates(self, toy, crowd):
        f, j = toy.index_of("f"), toy.index_of("j")
        answers = crowd.ask_pairwise_round(
            [PairwiseQuestion(f, j), PairwiseQuestion(j, f)]
        )
        assert crowd.stats.questions == 1
        assert len(answers) == 1

    def test_round_counts_once(self, toy, crowd):
        questions = [
            PairwiseQuestion(toy.index_of("f"), toy.index_of(x))
            for x in "jhe"
        ]
        crowd.ask_pairwise_round(questions)
        assert crowd.stats.rounds == 1
        assert crowd.stats.questions == 3

    def test_all_cached_round_is_free(self, toy, crowd):
        question = PairwiseQuestion(toy.index_of("f"), toy.index_of("j"))
        crowd.ask_pairwise_round([question])
        crowd.ask_pairwise_round([question])
        assert crowd.stats.rounds == 1

    def test_question_log_records_rounds(self, toy, crowd):
        f, j, e = (toy.index_of(x) for x in "fje")
        crowd.ask_pairwise_round([PairwiseQuestion(f, j)])
        crowd.ask_pairwise_round([PairwiseQuestion(f, e)])
        assert [entry[0] for entry in crowd.question_log] == [1, 2]

    def test_budget_enforced(self, toy):
        crowd = SimulatedCrowd(toy, max_questions=1)
        crowd.ask_pairwise(PairwiseQuestion(0, 1))
        with pytest.raises(BudgetExhaustedError):
            crowd.ask_pairwise(PairwiseQuestion(0, 2))

    def test_voting_policy_controls_assignments(self, toy):
        crowd = SimulatedCrowd(
            toy, pool=WorkerPool.uniform(), voting=StaticVoting(5), seed=0
        )
        crowd.ask_pairwise(PairwiseQuestion(0, 1))
        assert crowd.stats.worker_assignments == 5

    def test_noisy_majority_usually_correct(self, toy):
        f, j = toy.index_of("f"), toy.index_of("j")
        correct = 0
        for seed in range(30):
            crowd = SimulatedCrowd(
                toy,
                pool=WorkerPool.uniform(accuracy=0.8),
                voting=StaticVoting(5),
                seed=seed,
            )
            if crowd.ask_pairwise(PairwiseQuestion(f, j)) is Preference.LEFT:
                correct += 1
        assert correct >= 27  # majority voting lifts 0.8 to ~0.94

    def test_unary_round(self, toy, crowd):
        questions = [UnaryQuestion(i, 0) for i in range(len(toy))]
        answers = crowd.ask_unary_round(questions)
        assert len(answers) == len(toy)
        assert crowd.stats.rounds == 1
        # Perfect crowd returns exact latent ranks.
        assert answers[UnaryQuestion(toy.index_of("f"), 0)] == 1.0

    def test_unary_cached(self, toy, crowd):
        crowd.ask_unary_round([UnaryQuestion(0, 0)])
        crowd.ask_unary_round([UnaryQuestion(0, 0)])
        assert crowd.stats.questions == 1
        assert crowd.stats.rounds == 1

    def test_unary_budget(self, toy):
        crowd = SimulatedCrowd(toy, max_questions=2)
        with pytest.raises(BudgetExhaustedError):
            crowd.ask_unary_round([UnaryQuestion(i, 0) for i in range(5)])

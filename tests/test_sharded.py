"""Sharded-vs-serial differential harness (docs/sharding.md).

The sharded machine phase is only allowed to exist because it is
provably invisible: for any shard count, partitioner and job count, the
dominance matrix, dominating sets, layers, question order and the full
``CrowdSkylineResult`` of every scheduler must be byte-identical to the
serial path, and the scalable local-skyline/merge protocol must return
exactly :func:`repro.skyline.dominance.skyline_mask` while shipping
O(skyline) candidates. This suite pins all of it: fixed seeded
datasets, a Hypothesis property over generated relations, edge cases
(empty shards, shards > n, all-duplicates), the `ProcessPoolExecutor`
fan-out, obs spans/counters, and a journal crash-resume differential in
the style of ``tests/test_recovery.py``.

The shard counts under test default to {1, 2, 4, 7} and can be pinned
by the CI matrix via ``REPRO_TEST_SHARDS="1"`` etc.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import CrowdSkyConfig, crowdsky, parallel_dset, parallel_sl
from repro.core.crowdsky import crowdsky_budgeted
from repro.core.engine import build_context
from repro.core.resume import resume_run
from repro.crowd.faults import FaultPlan
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.retry import RetryPolicy
from repro.crowd.workers import WorkerPool
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset
from repro.exceptions import CrowdSkyError
from repro.obs import observe
from repro.obs.metrics import SHARD_DOMINANCE_CHECKS, SHARD_TUPLES_SHIPPED
from repro.skyline.dominance import dominance_matrix, skyline_mask
from repro.skyline.dominating import (
    dominating_sets,
    dominating_sets_from_matrix,
)
from repro.skyline.layers import (
    covering_graph_from_matrix,
    skyline_layers_from_matrix,
)
from repro.skyline.sharded import (
    PARTITIONERS,
    local_skyline_mask,
    make_plan,
    sharded_dominance_matrix,
    sharded_skyline_mask,
)
from tests.strategies import (
    DIFFERENTIAL_SETTINGS,
    crowd_relations,
    known_matrices,
)
from tests.test_recovery import (
    assert_same_result,
    crash_at,
    journal_bytes,
    record_boundaries,
)

pytestmark = pytest.mark.shard

#: Shard counts exercised everywhere; the CI matrix narrows this via
#: ``REPRO_TEST_SHARDS="4"`` to split the suite across jobs.
SHARD_COUNTS = tuple(
    int(token)
    for token in (os.environ.get("REPRO_TEST_SHARDS") or "1 2 4 7").split()
)

SCHEDULERS = {
    "crowdsky": crowdsky,
    "parallel_dset": parallel_dset,
    "parallel_sl": parallel_sl,
}


def _datasets():
    rng = np.random.default_rng(11)
    return {
        "independent": rng.random((120, 3)),
        "anticorrelated": np.column_stack(
            [rng.random(90), 1.0 - rng.random(90) * 0.1]
        ),
        "ties": rng.integers(0, 4, size=(80, 3)).astype(float),
        "all_duplicates": np.tile(rng.random((1, 3)), (25, 1)),
        "single_row": rng.random((1, 4)),
        "empty": np.zeros((0, 3)),
    }


DATASETS = _datasets()


# -- partitioners ------------------------------------------------------------


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("n", [0, 1, 5, 97])
def test_partition_is_a_deterministic_cover(partitioner, n):
    for shards in SHARD_COUNTS:
        plan = make_plan(n, shards, partitioner)
        again = make_plan(n, shards, partitioner)
        assert [p.tolist() for p in plan.parts] == [
            p.tolist() for p in again.parts
        ]
        merged = np.concatenate([p for p in plan.parts]) if n else (
            np.zeros(0, dtype=int)
        )
        assert sorted(merged.tolist()) == list(range(n))
        assert len(plan.parts) == shards


def test_range_partition_is_contiguous():
    plan = make_plan(100, 7, "range")
    for part in plan.parts:
        assert part.tolist() == list(range(part[0], part[-1] + 1))


def test_hash_partition_seed_changes_assignment():
    a = make_plan(200, 4, "hash", seed=0)
    b = make_plan(200, 4, "hash", seed=1)
    assert [p.tolist() for p in a.parts] != [p.tolist() for p in b.parts]
    assert sorted(np.concatenate(b.parts).tolist()) == list(range(200))


def test_unknown_partitioner_and_bad_count_raise():
    with pytest.raises(CrowdSkyError, match="partitioner"):
        make_plan(10, 2, "zigzag")
    with pytest.raises(CrowdSkyError, match="shard count"):
        make_plan(10, 0)


# -- the local-skyline kernel and the sharded merge --------------------------


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_local_kernel_matches_matrix_kernel(dataset):
    data = DATASETS[dataset]
    mask, checks = local_skyline_mask(data)
    assert np.array_equal(mask, skyline_mask(data))
    assert checks >= 0


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_sharded_skyline_matches_serial(dataset, partitioner):
    data = DATASETS[dataset]
    reference = skyline_mask(data)
    for shards in SHARD_COUNTS:
        mask, stats = sharded_skyline_mask(data, shards, partitioner)
        assert np.array_equal(mask, reference), (dataset, shards)
        assert stats.tuples_shipped == sum(stats.local_skyline_sizes)
        assert stats.skyline_size == int(np.count_nonzero(reference))
        assert stats.shard_sizes == [
            int(p.size) for p in make_plan(
                data.shape[0], shards, partitioner
            ).parts
        ]


def test_shards_exceeding_n_leave_empty_shards_and_agree():
    data = DATASETS["independent"][:3]
    plan = make_plan(3, 9, "hash")
    assert sum(1 for p in plan.parts if p.size == 0) >= 6
    mask, stats = sharded_skyline_mask(data, 9, "hash")
    assert np.array_equal(mask, skyline_mask(data))
    assert len(stats.local_skyline_sizes) == 9


def test_all_duplicates_ship_every_tuple():
    """The documented degenerate case: every tuple is in the skyline,
    so shard-local pruning cannot drop anything."""
    data = DATASETS["all_duplicates"]
    mask, stats = sharded_skyline_mask(data, 4, "range")
    assert mask.all()
    assert stats.tuples_shipped == data.shape[0]


def test_tuples_shipped_stays_near_skyline_size_not_n():
    """The communication-cost claim: on independent data each shard
    ships only its local skyline, keeping total transfer O(skyline)."""
    data = np.random.default_rng(23).random((4000, 3))
    for shards in SHARD_COUNTS:
        if shards < 2:
            continue
        mask, stats = sharded_skyline_mask(data, shards, "hash")
        sky = int(np.count_nonzero(mask))
        assert stats.tuples_shipped <= 16 * max(sky, 1)
        assert stats.tuples_shipped < data.shape[0] / 10
        assert stats.dominance_checks == (
            stats.local_checks + stats.merge_checks
        )


def test_pool_fanout_is_identical_to_inline():
    data = np.random.default_rng(5).random((400, 3))
    inline_mask, inline_stats = sharded_skyline_mask(
        data, 4, "hash", jobs=1
    )
    pool_mask, pool_stats = sharded_skyline_mask(data, 4, "hash", jobs=2)
    assert np.array_equal(inline_mask, pool_mask)
    assert inline_stats.tuples_shipped == pool_stats.tuples_shipped
    assert inline_stats.local_checks == pool_stats.local_checks
    assert np.array_equal(
        sharded_dominance_matrix(data, 4, "range", jobs=2),
        dominance_matrix(data),
    )


def test_plan_size_mismatch_raises():
    plan = make_plan(10, 2)
    with pytest.raises(CrowdSkyError, match="plan was built"):
        sharded_skyline_mask(np.zeros((4, 2)), 2, plan=plan)
    with pytest.raises(CrowdSkyError, match="plan was built"):
        sharded_dominance_matrix(np.zeros((4, 2)), 2, plan=plan)


# -- machine-phase structures ------------------------------------------------


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
def test_sharded_matrix_and_derived_structures_are_identical(partitioner):
    for dataset in ("independent", "ties", "all_duplicates"):
        data = DATASETS[dataset]
        serial = dominance_matrix(data)
        for shards in SHARD_COUNTS:
            sharded = sharded_dominance_matrix(data, shards, partitioner)
            assert np.array_equal(sharded, serial), (dataset, shards)
            assert dominating_sets_from_matrix(sharded) == (
                dominating_sets(data)
            )
            assert skyline_layers_from_matrix(sharded) == (
                skyline_layers_from_matrix(serial)
            )
            assert covering_graph_from_matrix(sharded) == (
                covering_graph_from_matrix(serial)
            )


def test_build_context_shard_switch_is_invisible():
    relation = generate_synthetic(40, 2, 1, seed=42)
    serial = build_context(relation)
    for shards in SHARD_COUNTS:
        sharded = build_context(
            relation, shards=shards, shard_partitioner="hash"
        )
        assert np.array_equal(sharded.matrix, serial.matrix)
        assert sharded.dominating == serial.dominating
        assert sharded.eval_order() == serial.eval_order()


def test_build_context_rejects_invalid_shard_config():
    relation = generate_synthetic(10, 2, 1, seed=42)
    with pytest.raises(CrowdSkyError, match="shards"):
        build_context(relation, shards=0)
    with pytest.raises(CrowdSkyError, match="shard_jobs"):
        build_context(relation, shards=2, shard_jobs=0)
    with pytest.raises(CrowdSkyError, match="partitioner"):
        build_context(relation, shards=2, shard_partitioner="nope")


# -- full crowd runs: every scheduler, every shard count ---------------------


@pytest.fixture(scope="module")
def serial_results():
    relation = generate_synthetic(
        36, 2, 1, Distribution.ANTI_CORRELATED, seed=7
    )
    return relation, {
        name: run(relation) for name, run in SCHEDULERS.items()
    }


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_full_runs_are_byte_identical(
    serial_results, scheduler, partitioner
):
    relation, baselines = serial_results
    for shards in SHARD_COUNTS:
        result = SCHEDULERS[scheduler](
            relation,
            config=CrowdSkyConfig(
                shards=shards, shard_partitioner=partitioner
            ),
        )
        assert_same_result(result, baselines[scheduler])


def test_budgeted_scheduler_matches_serial():
    relation = generate_synthetic(30, 2, 1, seed=11)
    baseline = crowdsky_budgeted(relation, 25)
    for shards in SHARD_COUNTS:
        result = crowdsky_budgeted(
            relation, 25, config=CrowdSkyConfig(
                shards=shards, shard_partitioner="hash"
            )
        )
        assert_same_result(result, baseline)


def test_toy_dataset_with_pool_jobs_matches_serial():
    relation = figure1_dataset()
    baseline = crowdsky(relation)
    result = crowdsky(
        relation, config=CrowdSkyConfig(shards=3, shard_jobs=2)
    )
    assert_same_result(result, baseline)


def test_shards_exceeding_n_full_run_matches_serial():
    relation = generate_synthetic(6, 2, 1, seed=3)
    baseline = crowdsky(relation)
    for partitioner in sorted(PARTITIONERS):
        result = crowdsky(
            relation,
            config=CrowdSkyConfig(
                shards=19, shard_partitioner=partitioner
            ),
        )
        assert_same_result(result, baseline)


# -- Hypothesis differentials ------------------------------------------------


@settings(max_examples=60, deadline=None, parent=DIFFERENTIAL_SETTINGS)
@given(data=known_matrices(max_rows=40))
def test_property_sharded_skyline_equals_serial(data):
    reference = skyline_mask(data)
    n = data.shape[0]
    for shards, partitioner in ((1, "range"), (3, "hash"), (n + 2, "hash")):
        mask, stats = sharded_skyline_mask(data, shards, partitioner)
        assert np.array_equal(mask, reference)
        assert stats.tuples_shipped >= int(np.count_nonzero(reference))
    assert np.array_equal(
        sharded_dominance_matrix(data, 3, "hash"), dominance_matrix(data)
    )


@settings(max_examples=25, deadline=None, parent=DIFFERENTIAL_SETTINGS)
@given(relation=crowd_relations())
def test_property_full_run_is_shard_invariant(relation):
    baseline = crowdsky(relation)
    for shards in (2, 5):
        result = crowdsky(
            relation,
            config=CrowdSkyConfig(
                shards=shards, shard_partitioner="hash"
            ),
        )
        assert_same_result(result, baseline)


# -- journal crash-resume ----------------------------------------------------


def _sharded_journaled_run(relation, journal, shards):
    crowd = SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(size=25, accuracy=0.85),
        seed=9,
        journal=journal,
        faults=FaultPlan(
            abandonment_rate=0.05,
            hit_timeout_rate=0.04,
            transient_error_rate=0.04,
            seed=13,
        ),
        retry=RetryPolicy(max_attempts=4),
    )
    result = crowdsky(
        relation,
        crowd,
        CrowdSkyConfig(shards=shards, shard_partitioner="hash"),
    )
    if crowd.journal is not None:
        crowd.journal.close()
    return result


def test_journaled_sharded_run_resumes_byte_identical(tmp_path):
    """Crash-resume differential for a sharded config: the journal
    header records the shard fields, so a resume re-executes the
    sharded machine phase and must converge to the identical run —
    which is itself identical to the serial run."""
    relation = generate_synthetic(24, 2, 1, seed=5)
    baseline = _sharded_journaled_run(relation, tmp_path / "base", 4)
    serial = _sharded_journaled_run(relation, tmp_path / "serial", 1)
    assert_same_result(baseline, serial)
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    assert len(boundaries) > 10
    samples = sorted(
        {boundaries[0], boundaries[len(boundaries) // 3],
         boundaries[2 * len(boundaries) // 3], boundaries[-1]}
    )
    for index, cut in enumerate(samples):
        crashed = crash_at(tmp_path, f"cut{index}", raw, cut)
        resumed = resume_run(crashed, relation)
        assert_same_result(resumed, baseline)
        assert journal_bytes(crashed) == raw, f"cut {index}"


# -- observability -----------------------------------------------------------


def test_shard_spans_and_transfer_counters_are_emitted(tmp_path):
    data = np.random.default_rng(2).random((300, 3))
    trace = tmp_path / "trace.jsonl"
    with observe(trace_path=str(trace)) as observation:
        _, stats = sharded_skyline_mask(data, 4, "hash")
        metrics = observation.metrics
        assert metrics.value(SHARD_TUPLES_SHIPPED) == stats.tuples_shipped
        assert metrics.value(
            SHARD_DOMINANCE_CHECKS, stage="local"
        ) == stats.local_checks
        assert metrics.value(
            SHARD_DOMINANCE_CHECKS, stage="merge"
        ) == stats.merge_checks
    text = trace.read_text()
    assert '"shard.map"' in text and '"shard.merge"' in text


def test_matrix_regime_counts_full_rows_shipped(tmp_path):
    data = np.random.default_rng(3).random((60, 3))
    with observe(trace_path=str(tmp_path / "t.jsonl")) as observation:
        sharded_dominance_matrix(data, 4, "hash")
        metrics = observation.metrics
        assert metrics.value(SHARD_TUPLES_SHIPPED) == 60
        assert metrics.value(
            SHARD_DOMINANCE_CHECKS, stage="matrix"
        ) == 60 * 60


def test_disabled_observability_emits_nothing_and_agrees():
    data = np.random.default_rng(2).random((120, 3))
    mask, _ = sharded_skyline_mask(data, 3, "range")
    assert np.array_equal(mask, skyline_mask(data))

"""Tests for the sorting substrate (tournament internals, comparators)."""

import numpy as np
import pytest

from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import Preference
from repro.data.toy import figure1_dataset
from repro.sorting.comparators import (
    CountingComparator,
    crowd_comparator,
    truth_comparator,
)
from repro.sorting.tournament import _TournamentTree, tournament_sort


class TestTournamentTree:
    def test_winner_is_minimum(self):
        latent = np.asarray([[3.0], [1.0], [2.0], [5.0]])
        tree = _TournamentTree(list(range(4)), truth_comparator(latent))
        assert tree.winner == 1

    def test_remove_winner_promotes_runner_up(self):
        latent = np.asarray([[3.0], [1.0], [2.0], [5.0]])
        tree = _TournamentTree(list(range(4)), truth_comparator(latent))
        assert tree.remove_winner() == 1
        assert tree.winner == 2

    def test_empty_tree_raises(self):
        latent = np.asarray([[1.0]])
        tree = _TournamentTree([0], truth_comparator(latent))
        tree.remove_winner()
        with pytest.raises(IndexError):
            tree.remove_winner()


class TestCrowdComparator:
    def test_reads_from_platform(self):
        relation = figure1_dataset()
        crowd = SimulatedCrowd(relation)
        compare = crowd_comparator(crowd, 0)
        f, j = relation.index_of("f"), relation.index_of("j")
        assert compare(f, j) is Preference.LEFT
        assert crowd.stats.questions == 1
        # The symmetric comparison is served from the platform cache.
        assert compare(j, f) is Preference.RIGHT
        assert crowd.stats.questions == 1

    def test_full_sort_against_latent_order(self):
        relation = figure1_dataset()
        crowd = SimulatedCrowd(relation)
        order = tournament_sort(
            range(len(relation)), crowd_comparator(crowd, 0)
        )
        latent = relation.latent_matrix()[:, 0]
        values = [latent[i] for i in order]
        assert values == sorted(values)


class TestCountingComparator:
    def test_counts_calls_and_distinct_pairs(self):
        latent = np.asarray([[2.0], [1.0], [3.0]])
        counter = CountingComparator(truth_comparator(latent))
        counter(0, 1)
        counter(1, 0)  # same unordered pair
        counter(0, 2)
        assert counter.calls == 3
        assert counter.distinct_pairs == 2

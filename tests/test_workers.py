"""Tests for worker error models and the worker pool."""

import numpy as np
import pytest

from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.questions import PairwiseQuestion, Preference, UnaryQuestion
from repro.crowd.workers import (
    BernoulliWorker,
    DifficultyAwareWorker,
    PerfectWorker,
    SkilledWorker,
    SpammerWorker,
    WorkerPool,
)
from repro.exceptions import CrowdPlatformError


@pytest.fixture
def oracle(toy):
    return GroundTruthOracle(toy)


@pytest.fixture
def question(toy):
    # f is most preferred in A3 (rank 1); j least (rank 12).
    return PairwiseQuestion(toy.index_of("f"), toy.index_of("j"), 0)


class TestOracle:
    def test_pairwise_truth(self, oracle, question):
        assert oracle.pairwise_truth(question) is Preference.LEFT

    def test_pairwise_truth_flipped(self, toy, oracle):
        flipped = PairwiseQuestion(toy.index_of("j"), toy.index_of("f"), 0)
        assert oracle.pairwise_truth(flipped) is Preference.RIGHT

    def test_unary_truth(self, toy, oracle):
        assert oracle.unary_truth(UnaryQuestion(toy.index_of("f"), 0)) == 1.0

    def test_value_range(self, oracle):
        assert oracle.value_range(0) == 11.0  # ranks 1..12

    def test_value_range_degenerate(self, small_independent):
        oracle = GroundTruthOracle(small_independent)
        assert oracle.value_range(0) > 0


class TestPerfectWorker(object):
    def test_always_truthful(self, oracle, question, rng):
        worker = PerfectWorker()
        for _ in range(10):
            assert worker.answer_pairwise(question, oracle, rng) is (
                Preference.LEFT
            )

    def test_unary_exact(self, toy, oracle, rng):
        worker = PerfectWorker()
        question = UnaryQuestion(toy.index_of("h"), 0)
        assert worker.answer_pairwise is not None
        assert worker.answer_unary(question, oracle, rng) == 2.0


class TestBernoulliWorker:
    def test_accuracy_validated(self):
        with pytest.raises(CrowdPlatformError):
            BernoulliWorker(accuracy=1.5)

    def test_error_rate_close_to_one_minus_p(self, oracle, question, rng):
        worker = BernoulliWorker(accuracy=0.7)
        answers = [
            worker.answer_pairwise(question, oracle, rng)
            for _ in range(4000)
        ]
        error_rate = sum(a is not Preference.LEFT for a in answers) / 4000
        assert abs(error_rate - 0.3) < 0.04

    def test_errors_flip_preference(self, oracle, question, rng):
        worker = BernoulliWorker(accuracy=0.0, error_equal_fraction=0.0)
        assert worker.answer_pairwise(question, oracle, rng) is (
            Preference.RIGHT
        )

    def test_errors_hedge_to_equal(self, oracle, question, rng):
        worker = BernoulliWorker(accuracy=0.0, error_equal_fraction=1.0)
        assert worker.answer_pairwise(question, oracle, rng) is (
            Preference.EQUAL
        )

    def test_error_equal_fraction_validated(self):
        with pytest.raises(CrowdPlatformError):
            BernoulliWorker(error_equal_fraction=-0.1)

    def test_error_split_roughly_half(self, oracle, question, rng):
        worker = BernoulliWorker(accuracy=0.0, error_equal_fraction=0.5)
        answers = [
            worker.answer_pairwise(question, oracle, rng)
            for _ in range(2000)
        ]
        equal_rate = sum(a is Preference.EQUAL for a in answers) / 2000
        assert 0.4 < equal_rate < 0.6

    def test_equal_truth_errs_to_strict(self, rng, toy):
        # Craft two tuples with equal latents via a tiny relation.
        from tests.conftest import make_relation

        relation = make_relation([(1, 2), (2, 1)], [(5,), (5,)])
        oracle = GroundTruthOracle(relation)
        worker = BernoulliWorker(accuracy=0.0)
        answer = worker.answer_pairwise(PairwiseQuestion(0, 1), oracle, rng)
        assert answer in (Preference.LEFT, Preference.RIGHT)

    def test_unary_noise_scales_with_range(self, oracle, toy, rng):
        worker = BernoulliWorker(unary_sigma=0.1)
        question = UnaryQuestion(toy.index_of("e"), 0)
        samples = [
            worker.answer_unary(question, oracle, rng) for _ in range(500)
        ]
        assert abs(float(np.mean(samples)) - 3.0) < 0.2
        assert 0.5 * 1.1 < float(np.std(samples)) < 1.5 * 1.1


class TestSkilledWorker:
    def test_hire_clips_accuracy(self, rng):
        for _ in range(50):
            worker = SkilledWorker.hire(rng, mean_accuracy=0.5,
                                        accuracy_std=0.5)
            assert 0.5 <= worker.accuracy <= 1.0


class TestDifficultyAwareWorker:
    def test_easy_questions_nearly_perfect(self, toy, oracle, rng):
        worker = DifficultyAwareWorker(easiness_scale=0.05)
        question = PairwiseQuestion(toy.index_of("f"), toy.index_of("j"), 0)
        answers = [
            worker.answer_pairwise(question, oracle, rng)
            for _ in range(300)
        ]
        accuracy = sum(a is Preference.LEFT for a in answers) / 300
        assert accuracy > 0.95

    def test_near_ties_are_coin_flips(self, toy, oracle, rng):
        worker = DifficultyAwareWorker(easiness_scale=10.0)
        question = PairwiseQuestion(toy.index_of("f"), toy.index_of("h"), 0)
        answers = [
            worker.answer_pairwise(question, oracle, rng)
            for _ in range(2000)
        ]
        accuracy = sum(a is Preference.LEFT for a in answers) / 2000
        assert 0.4 < accuracy < 0.62

    def test_scale_validated(self):
        with pytest.raises(CrowdPlatformError):
            DifficultyAwareWorker(easiness_scale=0.0)


class TestSpammerWorker:
    def test_uniform_answers(self, oracle, question, rng):
        worker = SpammerWorker()
        answers = {
            worker.answer_pairwise(question, oracle, rng)
            for _ in range(100)
        }
        assert answers == set(Preference)

    def test_unary_in_range(self, oracle, toy, rng):
        worker = SpammerWorker()
        value = worker.answer_unary(UnaryQuestion(0, 0), oracle, rng)
        assert 0.0 <= value <= oracle.value_range(0)


class TestWorkerPool:
    def test_empty_pool_rejected(self):
        with pytest.raises(CrowdPlatformError):
            WorkerPool([])

    def test_uniform_pool_size(self):
        assert len(WorkerPool.uniform(size=30)) == 30

    def test_perfect_pool(self, oracle, question, rng):
        pool = WorkerPool.perfect()
        (worker,) = pool.draw(rng, 1)
        assert worker.answer_pairwise(question, oracle, rng) is (
            Preference.LEFT
        )

    def test_draw_count_validated(self, rng):
        with pytest.raises(CrowdPlatformError):
            WorkerPool.uniform().draw(rng, 0)

    def test_draw_with_replacement(self, rng):
        pool = WorkerPool([PerfectWorker()])
        assert len(pool.draw(rng, 5)) == 5

    def test_mixed_pool_spammer_fraction(self, rng):
        pool = WorkerPool.mixed(rng, size=20, spammer_fraction=0.5)
        spammers = sum(
            isinstance(w, SpammerWorker) for w in pool._workers
        )
        assert spammers == 10

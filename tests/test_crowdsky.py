"""Tests for serial CrowdSky, pinned against the paper's worked examples."""

import pytest

from repro.core.crowdsky import CrowdSkyConfig, PruningLevel, crowdsky
from repro.core.preference import ContradictionPolicy
from repro.crowd.platform import SimulatedCrowd
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import (
    FIGURE1_SKYLINE_LABELS,
    figure1_dataset,
    figure3_dataset,
)
from repro.exceptions import CrowdSkyError
from repro.metrics.accuracy import ground_truth_skyline
from tests.conftest import make_relation


def labelled_pairs(result, relation):
    return [
        tuple(sorted((relation.label(a), relation.label(b))))
        for a, b in result.asked_pairs()
    ]


class TestGoldenFigure1:
    """Example 6 / Figure 4(a): the full 12-question serial trace."""

    def test_skyline_matches_paper(self, toy):
        result = crowdsky(toy)
        assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)

    def test_exactly_twelve_questions(self, toy):
        result = crowdsky(toy)
        assert result.stats.questions == 12
        assert result.stats.rounds == 12  # serial: one question per round

    def test_question_trace_matches_figure4a(self, toy):
        result = crowdsky(toy)
        expected = [
            ("a", "b"),          # Q(a)
            ("e", "g"),          # Q(g)
            ("b", "e"),          # P(d) probe
            ("d", "e"),          # Q(d)
            ("i", "l"),          # P(k) probe
            ("i", "k"),          # Q(k)
            ("c", "e"),          # Q(c)
            ("e", "f"),          # Q(f)
            ("e", "i"),          # P(h) probe
            ("e", "h"),          # Q(h)
            ("f", "h"),          # P(j) probe
            ("f", "j"),          # Q(j)
        ]
        assert labelled_pairs(result, toy) == expected

    def test_perfect_crowd_reproduces_ground_truth(self, toy):
        result = crowdsky(toy)
        assert result.skyline == ground_truth_skyline(toy)

    def test_no_rejected_answers_with_perfect_crowd(self, toy):
        result = crowdsky(
            toy,
            config=CrowdSkyConfig(policy=ContradictionPolicy.RAISE),
        )
        assert result.rejected_answers == 0


class TestGoldenFigure3:
    """§3.4's probing example: 9 questions on the anti-correlated toy."""

    def test_nine_questions(self, toy_fig3):
        result = crowdsky(toy_fig3)
        assert result.stats.questions == 9

    def test_skyline(self, toy_fig3):
        result = crowdsky(toy_fig3)
        assert result.skyline_labels(toy_fig3) == {"b", "e", "i", "j"}

    def test_e_answers_all_single_questions(self, toy_fig3):
        """After probing {b, e, i, j}, each remaining tuple is resolved
        with one question against e (§3.4's 3 + 6 accounting)."""
        result = crowdsky(toy_fig3)
        pairs = labelled_pairs(result, toy_fig3)
        probing, singles = pairs[:3], pairs[3:]
        assert all("e" in pair for pair in singles)
        assert len(singles) == 6


class TestPruningLadder:
    def test_dset_generates_26_questions_statically(self, toy):
        """Example 3: Σ|DS(t)| = 26 — the static size of the DSet
        question sets (Table 1)."""
        from repro.skyline.dominating import dominating_sets

        ds = dominating_sets(toy.known_matrix())
        assert sum(len(members) for members in ds) == 26

    def test_dset_asks_fewer_via_early_termination(self, toy):
        """Asking stops once a tuple is complete (Definition 4), so the
        live DSet run asks fewer than the static 26 — this is what makes
        the paper's Figure 6 DSet curve undercut Baseline on IND."""
        result = crowdsky(
            toy, config=CrowdSkyConfig(pruning=PruningLevel.DSET)
        )
        assert result.stats.questions == 16
        assert result.stats.questions < 26

    @pytest.mark.parametrize("level", list(PruningLevel))
    def test_all_levels_correct_on_toy(self, level):
        toy = figure1_dataset()
        result = crowdsky(toy, config=CrowdSkyConfig(pruning=level))
        assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)

    @pytest.mark.parametrize("level", list(PruningLevel))
    def test_all_levels_correct_on_random_data(self, level):
        relation = generate_synthetic(
            60, 3, 1, Distribution.INDEPENDENT, seed=13
        )
        result = crowdsky(relation, config=CrowdSkyConfig(pruning=level))
        assert result.skyline == ground_truth_skyline(relation)

    def test_pruning_reduces_questions_on_average(self):
        totals = {level: 0 for level in PruningLevel}
        for seed in range(5):
            for level in PruningLevel:
                relation = generate_synthetic(
                    100, 3, 1, Distribution.INDEPENDENT, seed=seed
                )
                result = crowdsky(
                    relation, config=CrowdSkyConfig(pruning=level)
                )
                totals[level] += result.stats.questions
        assert totals[PruningLevel.P1] < totals[PruningLevel.DSET]
        assert totals[PruningLevel.P1_P2] <= totals[PruningLevel.P1]


class TestCorrectnessProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_ground_truth_independent(self, seed):
        relation = generate_synthetic(
            70, 3, 1, Distribution.INDEPENDENT, seed=seed
        )
        assert crowdsky(relation).skyline == ground_truth_skyline(relation)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ground_truth_anti_correlated(self, seed):
        relation = generate_synthetic(
            50, 2, 1, Distribution.ANTI_CORRELATED, seed=seed
        )
        assert crowdsky(relation).skyline == ground_truth_skyline(relation)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ground_truth_multi_crowd(self, seed):
        relation = generate_synthetic(
            40, 2, 2, Distribution.INDEPENDENT, seed=seed
        )
        assert crowdsky(relation).skyline == ground_truth_skyline(relation)

    def test_three_crowd_attributes(self):
        relation = generate_synthetic(
            30, 2, 3, Distribution.INDEPENDENT, seed=3
        )
        assert crowdsky(relation).skyline == ground_truth_skyline(relation)

    def test_fewer_questions_than_all_pairs(self, small_independent):
        n = len(small_independent)
        result = crowdsky(small_independent)
        assert result.stats.questions < n * (n - 1) // 2

    def test_ak_skyline_always_included(self, small_independent):
        from repro.metrics.accuracy import ak_skyline

        result = crowdsky(small_independent)
        assert ak_skyline(small_independent) <= result.skyline


class TestEdgeCases:
    def test_requires_crowd_attribute(self):
        relation = make_relation([(1, 2), (2, 1)])
        with pytest.raises(CrowdSkyError):
            crowdsky(relation)

    def test_crowd_for_other_relation_rejected(self, toy, toy_fig3):
        crowd = SimulatedCrowd(toy_fig3)
        with pytest.raises(CrowdSkyError):
            crowdsky(toy, crowd=crowd)

    def test_single_tuple(self):
        relation = make_relation([(1, 1)], [(1,)])
        result = crowdsky(relation)
        assert result.skyline == {0}
        assert result.stats.questions == 0

    def test_duplicate_ak_values_resolved_by_preprocessing(self):
        """Algorithm 1 lines 1-3: identical AK values resolved in AC."""
        relation = make_relation(
            [(1, 1), (1, 1), (2, 2)],
            [(2,), (1,), (3,)],
        )
        result = crowdsky(relation)
        # Tuple 1 beats its AK-twin tuple 0 in AC; tuple 2 is dominated.
        assert result.skyline == {1}

    def test_duplicate_ak_values_tied_in_ac_both_survive(self):
        relation = make_relation(
            [(1, 1), (1, 1)],
            [(5,), (5,)],
        )
        result = crowdsky(relation)
        assert result.skyline == {0, 1}

    def test_all_tuples_identical_known_values(self):
        relation = make_relation(
            [(1, 1)] * 4,
            [(1,), (2,), (3,), (4,)],
        )
        result = crowdsky(relation)
        assert result.skyline == {0}

    def test_chain_in_ak_needs_no_equal_questions(self):
        """A total AK order: every tuple dominated by the previous one."""
        relation = make_relation(
            [(i, i) for i in range(5)],
            [(5 - i,) for i in range(5)],
        )
        result = crowdsky(relation)
        assert result.skyline == ground_truth_skyline(relation)


class TestRoundRobinExtension:
    def test_correct_and_no_more_questions(self, multi_crowd):
        baseline = crowdsky(multi_crowd)
        relation = generate_synthetic(
            50, 2, 2, Distribution.INDEPENDENT, seed=11
        )
        round_robin = crowdsky(
            relation, config=CrowdSkyConfig(ac_round_robin=True)
        )
        assert round_robin.skyline == baseline.skyline
        assert round_robin.stats.questions <= baseline.stats.questions

    def test_single_attribute_unaffected(self, toy):
        result = crowdsky(toy, config=CrowdSkyConfig(ac_round_robin=True))
        assert result.stats.questions == 12


class TestCorrelatedDistribution:
    """COR data: tiny skylines, heavy domination chains."""

    def test_matches_ground_truth(self):
        relation = generate_synthetic(
            80, 3, 1, Distribution.CORRELATED, seed=21
        )
        assert crowdsky(relation).skyline == ground_truth_skyline(relation)

    def test_needs_fewer_questions_than_independent(self):
        correlated = crowdsky(
            generate_synthetic(150, 3, 1, Distribution.CORRELATED, seed=22)
        )
        independent = crowdsky(
            generate_synthetic(150, 3, 1, Distribution.INDEPENDENT, seed=22)
        )
        assert correlated.stats.questions < independent.stats.questions

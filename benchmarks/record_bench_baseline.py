"""Refresh the committed benchmark-trajectory baselines.

Re-runs the ``smoke`` and ``ci`` suites of the benchmark-trajectory
harness (:mod:`repro.experiments.bench`) with the default repeat count,
writes the two fresh records to
``benchmarks/baselines/bench_trajectory.json`` (the reference
``crowdsky bench --check`` and the CI gate compare against), and
appends the same records to ``BENCH_trajectory.json`` so the committed
trajectory stays continuous across baseline refreshes.

Usage::

    PYTHONPATH=src python benchmarks/record_bench_baseline.py

Regenerate (and commit both diffs) after an *intentional* performance
change — the gate exists precisely to make unintentional ones loud.
Records carry the recording machine's fingerprint; on other machines
the gate skips unless forced with ``--ignore-fingerprint``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.bench import append_record, run_suite
from repro.io.atomic import atomic_write_text

ROOT = Path(__file__).parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baselines" / "bench_trajectory.json"
TRAJECTORY_PATH = ROOT / "BENCH_trajectory.json"
SUITES = ("smoke", "ci")
REPEATS = 3


def main() -> None:
    records = {}
    for suite in SUITES:
        print(f"== suite {suite} ({REPEATS} repeats)")
        record = run_suite(suite, repeats=REPEATS, progress=print)
        records[suite] = record
        total = append_record(record, TRAJECTORY_PATH)
        print(f"appended to {TRAJECTORY_PATH} ({total} records)")
    atomic_write_text(
        str(BASELINE_PATH),
        json.dumps({"suites": records}, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

"""Refresh the committed benchmark-trajectory baselines.

Re-runs suites of the benchmark-trajectory harness
(:mod:`repro.experiments.bench`) with the pinned repeat counts, merges
the fresh records into
``benchmarks/baselines/bench_trajectory.json`` (the reference
``crowdsky bench --check`` and the CI gate compare against), and
appends the same records to ``BENCH_trajectory.json`` so the committed
trajectory stays continuous across baseline refreshes.

Usage::

    PYTHONPATH=src python benchmarks/record_bench_baseline.py [suite ...]

With no arguments the default set (``smoke``, ``ci``) is re-recorded;
naming suites (e.g. ``scale``) records only those and *merges* them
into the existing baseline document, leaving the other suites'
committed records untouched — refreshing the minutes-long ``scale``
curve must not invalidate the smoke gate, and vice versa.

Regenerate (and commit both diffs) after an *intentional* performance
change — the gate exists precisely to make unintentional ones loud.
Records carry the recording machine's fingerprint; on other machines
the gate skips unless forced with ``--ignore-fingerprint``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.bench import SUITES, append_record, run_suite
from repro.io.atomic import atomic_write_text

ROOT = Path(__file__).parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "baselines" / "bench_trajectory.json"
TRAJECTORY_PATH = ROOT / "BENCH_trajectory.json"
DEFAULT_SUITES = ("smoke", "ci")
#: Per-suite repeats: the scale suites run minutes (crowd-scale: tens
#: of minutes) per repeat, so their baselines use fewer samples than
#: the fast suites.
REPEATS = {"smoke": 3, "ci": 3, "paper": 3, "scale": 2, "crowd-scale": 1}


def main(argv: list) -> None:
    suites = tuple(argv) or DEFAULT_SUITES
    unknown = [suite for suite in suites if suite not in SUITES]
    if unknown:
        raise SystemExit(
            f"unknown suite(s) {unknown}; pick from {sorted(SUITES)}"
        )
    if BASELINE_PATH.exists():
        document = json.loads(BASELINE_PATH.read_text())
    else:
        document = {"suites": {}}
    for suite in suites:
        repeats = REPEATS.get(suite, 3)
        print(f"== suite {suite} ({repeats} repeats)")
        record = run_suite(suite, repeats=repeats, progress=print)
        document["suites"][suite] = record
        total = append_record(record, TRAJECTORY_PATH)
        print(f"appended to {TRAJECTORY_PATH} ({total} records)")
    atomic_write_text(
        str(BASELINE_PATH),
        json.dumps(document, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    main(sys.argv[1:])

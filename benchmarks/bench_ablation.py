"""Ablation benchmarks for design choices called out in DESIGN.md.

* Probe ordering: descending ``freq`` (the §3.4 prose, our default) vs
  ascending (Algorithm 1 line 11's literal wording).
* Round-robin multi-``AC`` questioning (mentioned but unapplied in §6.1).
* Contradiction policy bookkeeping under a noisy crowd.
"""

import numpy as np

from repro.core.crowdsky import CrowdSkyConfig, crowdsky
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset


def _question_total(config, seeds, n=150, num_known=2, num_crowd=1,
                    distribution=Distribution.ANTI_CORRELATED):
    total = 0
    for seed in seeds:
        relation = generate_synthetic(
            n, num_known, num_crowd, distribution, seed=seed
        )
        total += crowdsky(relation, config=config).stats.questions
    return total


def test_probe_order_descending_vs_ascending(benchmark):
    """Descending-frequency probing should not lose to ascending, and on
    the toy dataset it reproduces the paper's 12-question trace."""

    def run():
        seeds = range(4)
        descending = _question_total(CrowdSkyConfig(), seeds)
        ascending = _question_total(
            CrowdSkyConfig(probe_ascending=True), seeds
        )
        return descending, ascending

    descending, ascending = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nprobe order: descending={descending} ascending={ascending}")
    benchmark.extra_info["descending"] = descending
    benchmark.extra_info["ascending"] = ascending
    assert descending <= ascending * 1.1
    assert crowdsky(figure1_dataset()).stats.questions == 12


def test_ac_round_robin_saves_questions(benchmark):
    """With |AC| = 2, round-robin asking skips decided attributes."""

    def run():
        totals = {}
        for name, config in (
            ("batched", CrowdSkyConfig()),
            ("round_robin", CrowdSkyConfig(ac_round_robin=True)),
        ):
            totals[name] = _question_total(
                config,
                range(3),
                n=100,
                num_crowd=2,
                distribution=Distribution.INDEPENDENT,
            )
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nround robin: {totals}")
    benchmark.extra_info.update(totals)
    assert totals["round_robin"] <= totals["batched"]


def test_multiway_probing_saves_probe_questions(benchmark):
    """§2.1's m-ary extension: k-ary probing resolves a dominating set
    with ⌈(d−1)/(k−1)⌉ micro-tasks instead of d−1 pairwise probes."""

    def run():
        totals = {}
        for k in (2, 4):
            totals[k] = _question_total(
                CrowdSkyConfig(multiway=k),
                range(4),
                n=200,
                num_known=2,
                distribution=Distribution.ANTI_CORRELATED,
            )
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmultiway probing questions: {totals}")
    benchmark.extra_info.update({str(k): v for k, v in totals.items()})
    assert totals[4] <= totals[2]


def test_contradiction_bookkeeping_under_noise(benchmark):
    """A noisy parallel run records (not silently drops) contradictions."""

    def run():
        rejected = 0
        for seed in range(5):
            relation = generate_synthetic(
                120, 2, 1, Distribution.ANTI_CORRELATED, seed=seed
            )
            crowd = SimulatedCrowd(
                relation,
                pool=WorkerPool.uniform(accuracy=0.7),
                voting=StaticVoting(1),
                seed=seed,
            )
            from repro.core.parallel import parallel_sl

            rejected += parallel_sl(relation, crowd=crowd).rejected_answers
        return rejected

    rejected = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrejected contradictory answers: {rejected}")
    benchmark.extra_info["rejected"] = rejected
    assert rejected >= 0

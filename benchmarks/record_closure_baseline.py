"""Record the closure-workload speedup baseline.

Replays every ``closure_cases`` workload (n=512) against both
preference backends, takes the median of repeated runs and writes
``benchmarks/baselines/closure_n512.json``. The committed baseline
documents the speedup the bitset backend is expected to sustain; the
perf smoke test (``tests/test_perf_core.py``) re-checks a scaled-down
version of the same invariant on every run.

Usage::

    PYTHONPATH=src python benchmarks/record_closure_baseline.py

Regenerate (and commit the diff) after intentional changes to either
backend or to the workload definitions.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from closure_cases import N, QUERIES_PER_ANSWER, WORKLOADS, run_workload

BASELINE_PATH = Path(__file__).parent / "baselines" / "closure_n512.json"
REPEATS = 7


def _median_seconds(ops, backend: str) -> float:
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        run_workload(ops, N, backend)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main() -> None:
    workloads = {}
    total = {"reference": 0.0, "bitset": 0.0}
    for name, ops in sorted(WORKLOADS.items()):
        ref_cs = run_workload(ops, N, "reference")
        bit_cs = run_workload(ops, N, "bitset")
        if ref_cs != bit_cs:
            raise SystemExit(f"backend checksums diverge on {name}")
        ref = _median_seconds(ops, "reference")
        bit = _median_seconds(ops, "bitset")
        total["reference"] += ref
        total["bitset"] += bit
        workloads[name] = {
            "ops": len(ops),
            "reference_ms": round(ref * 1000, 2),
            "bitset_ms": round(bit * 1000, 2),
            "speedup": round(ref / bit, 2),
        }
        print(
            f"{name:14s} ref={ref * 1000:8.1f}ms "
            f"bitset={bit * 1000:8.1f}ms speedup={ref / bit:5.2f}x"
        )
    aggregate = round(total["reference"] / total["bitset"], 2)
    print(f"aggregate speedup: {aggregate:.2f}x")
    baseline = {
        "n": N,
        "queries_per_answer": QUERIES_PER_ANSWER,
        "repeats": REPEATS,
        "python": platform.python_version(),
        "workloads": workloads,
        "aggregate_speedup": aggregate,
    }
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

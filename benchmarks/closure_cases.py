"""Deterministic closure workloads shared by benchmarks and perf tests.

Each workload is a flat list of ops — ``("answer", u, v, Preference)``
or ``("query", u, v)`` — generated once from a fixed seed and replayed
against a fresh :class:`~repro.core.preference.PreferenceGraph` per
backend. Replaying returns a checksum over every query result and the
accept/reject bit of every answer, so a run simultaneously measures
speed *and* proves the two backends computed identical relations.

Query density matters: after every crowd answer the schedulers
re-check dominance for a batch of candidate pairs (``resolve_pairs``
in ``engine.ask_batch``, the probe ladder in ``tasks.py``), so every
mutation here is followed by ``QUERIES_PER_ANSWER`` seeded pair
probes. The mixes exercise the cases that separate the backends:

* ``chain_probe`` — forward chain growth. Every insert invalidates
  the cached descendant sets of all ancestors, so the reference
  backend re-runs a DFS per distinct probe source each round; the
  bitset backend answers each probe with one shift-and-mask.
* ``reverse_chain`` — the chain built tip-first, the worst insert
  order for cache reuse: every new edge lands *above* all existing
  knowledge.
* ``random_dag`` — answers consistent with a hidden total order;
  the closest mix to what the schedulers actually generate.
* ``tie_heavy`` — a strict backbone plus pairwise tie merges,
  stressing class-union bookkeeping and merge propagation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.preference import PreferenceGraph
from repro.crowd.questions import Preference

N = 512

# Pair probes issued after every mutation — the schedulers check at
# least this many candidate pairs per incorporated crowd answer.
QUERIES_PER_ANSWER = 8

Op = Tuple


def _probes(rng: random.Random, n: int, ops: List[Op]) -> None:
    for _ in range(QUERIES_PER_ANSWER):
        a, b = rng.sample(range(n), 2)
        ops.append(("query", a, b))


def chain_probe_ops(n: int = N, seed: int = 2) -> List[Op]:
    rng = random.Random(seed)
    ops: List[Op] = []
    for i in range(n - 1):
        ops.append(("answer", i, i + 1, Preference.LEFT))
        _probes(rng, n, ops)
    return ops


def reverse_chain_ops(n: int = N, seed: int = 3) -> List[Op]:
    rng = random.Random(seed)
    ops: List[Op] = []
    for i in range(n - 2, -1, -1):
        ops.append(("answer", i, i + 1, Preference.LEFT))
        _probes(rng, n, ops)
    return ops


def random_dag_ops(n: int = N, seed: int = 0) -> List[Op]:
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    rank = {t: i for i, t in enumerate(order)}
    ops: List[Op] = []
    for _ in range(2 * n):
        u, v = rng.sample(range(n), 2)
        answer = Preference.LEFT if rank[u] < rank[v] else Preference.RIGHT
        ops.append(("answer", u, v, answer))
        _probes(rng, n, ops)
    return ops


def tie_heavy_ops(n: int = N, seed: int = 1) -> List[Op]:
    rng = random.Random(seed)
    ops: List[Op] = []
    # strict backbone over the even tuples...
    evens = list(range(0, n, 2))
    for a, b in zip(evens, evens[1:]):
        ops.append(("answer", a, b, Preference.LEFT))
        _probes(rng, n, ops)
    # ...then merge each odd tuple into its left neighbour's class,
    # probing across the backbone after every merge
    for i in range(1, n, 2):
        ops.append(("answer", i - 1, i, Preference.EQUAL))
        _probes(rng, n, ops)
    return ops


WORKLOADS: Dict[str, List[Op]] = {
    "chain_probe": chain_probe_ops(),
    "reverse_chain": reverse_chain_ops(),
    "random_dag": random_dag_ops(),
    "tie_heavy": tie_heavy_ops(),
}


def make_workloads(n: int) -> Dict[str, List[Op]]:
    """The same four mixes at a custom instance size."""
    return {
        "chain_probe": chain_probe_ops(n),
        "reverse_chain": reverse_chain_ops(n),
        "random_dag": random_dag_ops(n),
        "tie_heavy": tie_heavy_ops(n),
    }


_RELATION_CODE = {
    None: 0,
    Preference.LEFT: 3,
    Preference.RIGHT: 4,
    Preference.EQUAL: 5,
}


def run_workload(ops: List[Op], n: int, backend: str) -> int:
    """Replay ``ops`` on a fresh graph; return a result checksum."""
    graph = PreferenceGraph(n, backend=backend)
    checksum = 0
    for op in ops:
        if op[0] == "answer":
            _, u, v, answer = op
            checksum = checksum * 31 + (1 if graph.add_answer(u, v, answer) else 2)
        else:
            _, u, v = op
            checksum = checksum * 31 + _RELATION_CODE[graph.relation(u, v)]
        checksum %= 2**61 - 1
    return checksum

"""Figure 11: CrowdSky vs Baseline vs Unary accuracy (noisy crowd).

Paper shape: CrowdSky > Unary > Baseline. The Baseline asks far more
questions, so more of them are answered wrongly and its derived total
order misidentifies skyline tuples; Unary's absolute estimates are
noisier than pairwise judgments but cheaper to aggregate.
"""

import numpy as np


def _mean_f1(rows, method):
    return float(
        np.mean(
            [
                row[f"{method} precision"] * row[f"{method} recall"]
                for row in rows
            ]
        )
    )


def test_fig11_method_accuracy(run_figure, scale):
    result = run_figure("fig11")
    crowdsky = _mean_f1(result.rows, "CrowdSky")
    unary = _mean_f1(result.rows, "Unary")
    baseline = _mean_f1(result.rows, "Baseline")
    assert crowdsky > baseline
    # Full orderings need averaging over enough runs; the smoke grid
    # (n = 60, 2 seeds) only supports the CrowdSky > Baseline headline.
    if scale != "smoke":
        assert unary > baseline - 0.02
        assert crowdsky >= unary - 0.05

"""Figure 6: number of questions over independent distribution.

Paper shape: the full pruning stack (P1+P2+P3) minimizes questions in
every sweep — roughly an order of magnitude below Baseline on IND — and
DSet alone already beats Baseline on IND.
"""


def _assert_full_stack_wins(rows):
    for row in rows:
        assert row["P1+P2+P3"] < row["Baseline"]
        assert row["P1"] <= row["DSet"]


def test_fig6a_questions_vs_cardinality(run_figure):
    result = run_figure("fig6a")
    _assert_full_stack_wins(result.rows)
    # DSet beats Baseline on IND (the paper's observation 1).
    for row in result.rows:
        assert row["DSet"] < row["Baseline"] * 1.5


def test_fig6b_questions_vs_known_dims(run_figure):
    result = run_figure("fig6b")
    _assert_full_stack_wins(result.rows)
    # Pruned question counts decrease with |AK| while Baseline is flat.
    pruned = [row["P1+P2+P3"] for row in result.rows]
    assert pruned[-1] < pruned[0]


def test_fig6c_questions_vs_crowd_dims(run_figure):
    result = run_figure("fig6c")
    _assert_full_stack_wins(result.rows)
    # Question counts grow with |AC| for every method.
    for series in ("Baseline", "P1+P2+P3"):
        values = [row[series] for row in result.rows]
        assert values == sorted(values)

"""Figure 8: number of rounds vs cardinality (IND and ANT).

Paper shape: Baseline ≥ Serial ≫ ParallelDSet ≫ ParallelSL, with
ParallelSL one-to-two orders of magnitude below Serial and staying at a
few dozen rounds across cardinalities.
"""


def test_fig8_rounds_vs_cardinality(run_figure):
    result = run_figure("fig8")
    for row in result.rows:
        assert row["ParallelSL"] <= row["ParallelDSet"] <= row["Serial"]
        assert row["Serial"] <= row["Baseline"]
        # The headline claim: ParallelSL crushes the serial round count.
        assert row["ParallelSL"] < row["Serial"] / 4

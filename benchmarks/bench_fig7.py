"""Figure 7: number of questions over anti-correlated distribution.

Paper shape: plain DSet degrades on ANT (huge skylines) — it can exceed
Baseline — while P2 (transitivity) and P3 (probing) recover large
savings; the full stack still wins everywhere.
"""


def test_fig7a_questions_vs_cardinality(run_figure):
    result = run_figure("fig7a")
    for row in result.rows:
        assert row["P1+P2+P3"] < row["Baseline"]
        # P2 is "fairly effective over anti-correlated distribution".
        assert row["P1+P2"] < row["P1"]


def test_fig7b_questions_vs_known_dims(run_figure):
    result = run_figure("fig7b")
    for row in result.rows:
        assert row["P1+P2+P3"] < row["Baseline"]
    # Low |AK| is where pruning shines most on ANT (paper: two orders
    # of magnitude below DSet at |AK| = 2).
    first = result.rows[0]
    assert first["P1+P2+P3"] < first["DSet"] / 2


def test_fig7c_questions_vs_crowd_dims(run_figure):
    result = run_figure("fig7c")
    for row in result.rows:
        assert row["P1+P2+P3"] <= row["P1"]

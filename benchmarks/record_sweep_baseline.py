"""Record the sweep-engine baseline: serial vs parallel vs warm cache.

Runs a representative registry experiment (``fig6a``, ci scale) three
ways — serially, fanned over ``--jobs 4`` worker processes with a cold
result cache, and again against the now-warm cache — verifies all three
produce identical rows, and writes the wall-clock numbers to
``benchmarks/baselines/sweep_ci.json``.

The committed baseline documents the speedup the sweep engine sustains
on the recording machine. The ``cpus`` field matters when reading it:
process-pool fan-out cannot beat serial execution on a single-core
container, so judge the parallel figure against the core count it was
recorded on. The warm-cache figure is hardware-independent — serving
cells from disk skips the crowd simulation entirely.

Usage::

    PYTHONPATH=src python benchmarks/record_sweep_baseline.py

Regenerate (and commit the diff) after sweep-engine or experiment
changes.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.experiments.registry import run_experiment
from repro.experiments.sweep import SweepCache

BASELINE_PATH = Path(__file__).parent / "baselines" / "sweep_ci.json"
EXPERIMENT = "fig6a"
SCALE = "ci"
JOBS = 4


def _timed(**kwargs):
    start = time.perf_counter()
    result = run_experiment(EXPERIMENT, scale=SCALE, **kwargs)
    return time.perf_counter() - start, result


def main() -> None:
    serial_s, serial = _timed(jobs=1)
    print(f"serial            {serial_s * 1000:8.1f}ms")

    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        cold_s, cold = _timed(jobs=JOBS, cache=cache)
        print(f"jobs={JOBS} cold cache {cold_s * 1000:8.1f}ms")
        warm_s, warm = _timed(jobs=JOBS, cache=cache)
        print(f"jobs={JOBS} warm cache {warm_s * 1000:8.1f}ms")
        if cache.stats.hits != cache.stats.stored:
            raise SystemExit("warm pass did not serve every cell from cache")

    if cold.rows != serial.rows or warm.rows != serial.rows:
        raise SystemExit("parallel/cached rows diverge from serial rows")
    print("rows identical across serial / parallel / cached runs")

    baseline = {
        "experiment": EXPERIMENT,
        "scale": SCALE,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "serial_ms": round(serial_s * 1000, 1),
        "parallel_cold_ms": round(cold_s * 1000, 1),
        "warm_cache_ms": round(warm_s * 1000, 1),
        "parallel_speedup": round(serial_s / cold_s, 2),
        "warm_cache_fraction_of_serial": round(warm_s / serial_s, 3),
    }
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

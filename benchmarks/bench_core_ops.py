"""Micro-benchmarks of the machine-side substrate (true timing runs).

These exercise the vectorized kernels that make Python-scale runs of the
paper's grids feasible: the dominance matrix, the three skyline
algorithms, skyline layers and the frequency oracle — plus the
transitive-closure workloads of ``closure_cases`` replayed against both
preference backends (the committed speedup baseline lives in
``benchmarks/baselines/closure_n512.json``; regenerate it with
``python benchmarks/record_closure_baseline.py``).
"""

import numpy as np
import pytest

from closure_cases import N as CLOSURE_N
from closure_cases import WORKLOADS, run_workload
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import dominance_matrix, skyline_mask
from repro.skyline.dominating import FrequencyOracle, dominating_sets
from repro.skyline.layers import skyline_layers
from repro.skyline.sfs import sfs_skyline

N = 800
D = 4


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).random((N, D))


def test_dominance_matrix(benchmark, data):
    matrix = benchmark(dominance_matrix, data)
    assert matrix.shape == (N, N)


def test_skyline_mask(benchmark, data):
    mask = benchmark(skyline_mask, data)
    assert mask.any()


def test_bnl(benchmark, data):
    result = benchmark(bnl_skyline, data)
    assert result


def test_sfs(benchmark, data):
    result = benchmark(sfs_skyline, data)
    assert result == bnl_skyline(data)


def test_dnc(benchmark, data):
    result = benchmark(dnc_skyline, data)
    assert result == bnl_skyline(data)


def test_layers(benchmark, data):
    layers = benchmark(skyline_layers, data)
    assert sum(len(layer) for layer in layers) == N


def test_dominating_sets(benchmark, data):
    ds = benchmark(dominating_sets, data)
    assert len(ds) == N


def test_frequency_matrix(benchmark, data):
    oracle = FrequencyOracle(dominance_matrix(data))
    members = list(range(0, N, 10))
    table = benchmark(oracle.freq_matrix, members)
    assert table.shape == (len(members), len(members))


@pytest.mark.parametrize("backend", ["reference", "bitset", "numpy"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_closure_workload(benchmark, workload, backend):
    """Replay one closure workload (n=512) against one backend.

    The checksum covers every query result and accept/reject decision,
    so the benchmark doubles as a cross-backend equivalence check.
    """
    ops = WORKLOADS[workload]
    checksum = benchmark(run_workload, ops, CLOSURE_N, backend)
    assert checksum == run_workload(ops, CLOSURE_N, "bitset")

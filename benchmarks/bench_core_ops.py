"""Micro-benchmarks of the machine-side substrate (true timing runs).

These exercise the vectorized kernels that make Python-scale runs of the
paper's grids feasible: the dominance matrix, the three skyline
algorithms, skyline layers and the frequency oracle.
"""

import numpy as np
import pytest

from repro.skyline.bnl import bnl_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import dominance_matrix, skyline_mask
from repro.skyline.dominating import FrequencyOracle, dominating_sets
from repro.skyline.layers import skyline_layers
from repro.skyline.sfs import sfs_skyline

N = 800
D = 4


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).random((N, D))


def test_dominance_matrix(benchmark, data):
    matrix = benchmark(dominance_matrix, data)
    assert matrix.shape == (N, N)


def test_skyline_mask(benchmark, data):
    mask = benchmark(skyline_mask, data)
    assert mask.any()


def test_bnl(benchmark, data):
    result = benchmark(bnl_skyline, data)
    assert result


def test_sfs(benchmark, data):
    result = benchmark(sfs_skyline, data)
    assert result == bnl_skyline(data)


def test_dnc(benchmark, data):
    result = benchmark(dnc_skyline, data)
    assert result == bnl_skyline(data)


def test_layers(benchmark, data):
    layers = benchmark(skyline_layers, data)
    assert sum(len(layer) for layer in layers) == N


def test_dominating_sets(benchmark, data):
    ds = benchmark(dominating_sets, data)
    assert len(ds) == N


def test_frequency_matrix(benchmark, data):
    oracle = FrequencyOracle(dominance_matrix(data))
    members = list(range(0, N, 10))
    table = benchmark(oracle.freq_matrix, members)
    assert table.shape == (len(members), len(members))

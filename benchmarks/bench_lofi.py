"""Extension benchmark: the [12] probabilistic skyline's budget curve.

Shape: accuracy (Jaccard similarity to the true skyline) grows
monotonically-ish with budget, and informed selection (uncertainty /
influence) dominates random selection at mid budgets.
"""

import numpy as np


def test_extra_lofi_budget_curve(run_figure, scale):
    result = run_figure("extra_lofi")
    budgets = [row["budget"] for row in result.rows]
    assert budgets == sorted(budgets)
    first, last = result.rows[0], result.rows[-1]
    for policy in ("random", "uncertainty", "influence"):
        assert last[policy] >= first[policy]
    if scale != "smoke":
        mid = result.rows[len(result.rows) // 2]
        informed = max(mid["uncertainty"], mid["influence"])
        assert informed >= mid["random"] - 0.05

"""Figure 12 + §6.2 accuracy: the real-life queries Q1-Q3.

Paper shape: (a) CrowdSky costs 3-4x less than Baseline on every query;
(b) Baseline needs >100 rounds while the parallel schedulers stay below
~50, with ParallelSL the clear winner; accuracy stays high (Q1 reaches
precision = recall = 1.0 in the paper's AMT runs).
"""


def test_fig12a_monetary_cost(run_figure):
    result = run_figure("fig12a")
    for row in result.rows:
        assert row["CrowdSky ($)"] < row["Baseline ($)"] / 2


def test_fig12b_rounds(run_figure):
    result = run_figure("fig12b")
    for row in result.rows:
        assert row["ParallelSL"] <= row["ParallelDSet"]
        assert row["ParallelDSet"] < row["Baseline"]
        assert row["Baseline"] > 100


def test_q_accuracy(run_figure):
    result = run_figure("q_accuracy")
    for row in result.rows:
        assert row["recall"] >= 0.5
    q3 = next(row for row in result.rows if row["query"] == "Q3")
    # The paper's headline: the Q3 skyline is the Cy Young candidates.
    for name in ("Kershaw", "Scherzer", "Darvish", "Colon"):
        assert name in q3["skyline (last run)"]


def test_extra_latency_wall_clock(run_figure):
    """Extension: HIT-sampled wall-clock — hours for Baseline, minutes
    for ParallelSL, on every real-life query."""
    result = run_figure("extra_latency")
    for row in result.rows:
        assert row["ParallelSL (h)"] < row["ParallelDSet (h)"]
        assert row["ParallelDSet (h)"] < row["Baseline (h)"]
        assert row["Baseline (h)"] > 1.0

"""Regenerate the paper's worked Tables 1-3 (exact artifacts)."""


def test_table1(run_figure):
    result = run_figure("table1")
    assert sum(row["|DS(t)|"] for row in result.rows) == 26


def test_table2(run_figure):
    result = run_figure("table2")
    assert sum(row["questions"] for row in result.rows) == 18


def test_table3(run_figure):
    result = run_figure("table3")
    rounds = [row for row in result.rows if isinstance(row["round"], int)]
    assert len(rounds) == 6

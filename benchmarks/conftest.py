"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
experiment registry, asserts the paper's qualitative shape (who wins, by
roughly what factor) and attaches the measured rows to the benchmark
record (``extra_info``) so runs are self-documenting.

Scale is controlled with ``--repro-scale`` (default ``smoke`` so that
``pytest benchmarks/ --benchmark-only`` stays minutes-fast; use ``ci`` or
``paper`` to regenerate EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.report import format_table


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="smoke",
        choices=("smoke", "ci", "paper"),
        help="parameter grid for the figure/table reproductions",
    )


@pytest.fixture
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def run_figure(benchmark, scale):
    """Run one experiment under pytest-benchmark and return its rows."""

    def runner(experiment_id):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale},
            rounds=1,
            iterations=1,
        )
        print()
        print(format_table(result))
        benchmark.extra_info["rows"] = result.rows
        benchmark.extra_info["scale"] = scale
        return result

    return runner

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
experiment registry, asserts the paper's qualitative shape (who wins, by
roughly what factor) and attaches the measured rows to the benchmark
record (``extra_info``) so runs are self-documenting.

Scale is controlled with ``--repro-scale`` (default ``smoke`` so that
``pytest benchmarks/ --benchmark-only`` stays minutes-fast; use ``ci`` or
``paper`` to regenerate EXPERIMENTS.md numbers).

Profiling hooks: pass ``--repro-trace-dir DIR`` and/or
``--repro-metrics-dir DIR`` to record, for every benchmarked experiment,
a structured JSONL event trace (``DIR/<experiment_id>.jsonl``) and a
Prometheus-style metrics dump (``DIR/<experiment_id>.prom``) of the
measured run.

Sweep-engine hooks: ``--repro-jobs N`` fans each experiment's cells
over N worker processes; ``--repro-cache-dir DIR`` serves previously
computed cells from a content-addressed cache rooted at DIR. Caching is
*off* by default here — benchmarks should measure real work — and
``--repro-no-cache`` forces it off even when a directory is set.
"""

from __future__ import annotations

import os
from contextlib import nullcontext

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.report import format_table
from repro.experiments.sweep import resolve_cache
from repro.obs import observe


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="smoke",
        choices=("smoke", "ci", "paper"),
        help="parameter grid for the figure/table reproductions",
    )
    parser.addoption(
        "--repro-trace-dir",
        action="store",
        default=None,
        help="write a JSONL event trace per benchmarked experiment here",
    )
    parser.addoption(
        "--repro-metrics-dir",
        action="store",
        default=None,
        help="write a Prometheus metrics dump per experiment here",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes per experiment sweep (0 = one per CPU)",
    )
    parser.addoption(
        "--repro-cache-dir",
        action="store",
        default=None,
        help="serve sweep cells from a result cache rooted here",
    )
    parser.addoption(
        "--repro-no-cache",
        action="store_true",
        default=False,
        help="force the sweep result cache off",
    )


@pytest.fixture
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def sweep_options(request):
    """``(jobs, cache)`` for the sweep engine, from the CLI options."""
    jobs = request.config.getoption("--repro-jobs")
    cache_dir = request.config.getoption("--repro-cache-dir")
    if request.config.getoption("--repro-no-cache"):
        cache_dir = None
    return jobs, resolve_cache(cache_dir)


@pytest.fixture
def obs_dirs(request):
    """(trace_dir, metrics_dir) from the profiling options, created."""
    dirs = []
    for option in ("--repro-trace-dir", "--repro-metrics-dir"):
        directory = request.config.getoption(option)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        dirs.append(directory)
    return tuple(dirs)


@pytest.fixture
def run_figure(benchmark, scale, obs_dirs, sweep_options):
    """Run one experiment under pytest-benchmark and return its rows."""
    trace_dir, metrics_dir = obs_dirs
    jobs, cache = sweep_options

    def runner(experiment_id):
        observing = (
            observe(
                trace_path=(
                    os.path.join(trace_dir, f"{experiment_id}.jsonl")
                    if trace_dir
                    else None
                ),
                metrics_path=(
                    os.path.join(metrics_dir, f"{experiment_id}.prom")
                    if metrics_dir
                    else None
                ),
            )
            if trace_dir or metrics_dir
            else nullcontext()
        )
        with observing:
            result = benchmark.pedantic(
                run_experiment,
                args=(experiment_id,),
                kwargs={"scale": scale, "jobs": jobs, "cache": cache},
                rounds=1,
                iterations=1,
            )
        print()
        print(format_table(result))
        benchmark.extra_info["rows"] = result.rows
        benchmark.extra_info["scale"] = scale
        return result

    return runner

"""Figure 10: Static vs Dynamic voting accuracy (noisy crowd, p = 0.8).

Paper shape: DynamicVoting beats StaticVoting on both precision and
recall (it spends extra workers on high-frequency questions, limiting
the propagation of false dominance edges through the preference tree).
Both metrics live in a high band (≥ ~0.5) at these cardinalities.
"""

import numpy as np


def test_fig10_voting_accuracy(run_figure, scale):
    result = run_figure("fig10")
    static_f1, dynamic_f1 = [], []
    for row in result.rows:
        for column in (
            "StaticVoting precision",
            "StaticVoting recall",
            "DynamicVoting precision",
            "DynamicVoting recall",
        ):
            assert 0.3 <= row[column] <= 1.0
        static_f1.append(
            row["StaticVoting precision"] * row["StaticVoting recall"]
        )
        dynamic_f1.append(
            row["DynamicVoting precision"] * row["DynamicVoting recall"]
        )
    # Dynamic wins on average across the sweep. The smoke grid (n = 60,
    # 2 seeds) is dominated by sampling noise, so the ordering is only
    # enforced at ci/paper scale.
    if scale != "smoke":
        assert float(np.mean(dynamic_f1)) >= float(np.mean(static_f1)) - 0.02

"""Figure 9: number of rounds vs |AK| (IND and ANT).

Paper shape: Serial needs more rounds as |AK| grows while the parallel
schedulers *decrease* — the degree of parallelization rises with |AK|.
"""


def test_fig9_rounds_vs_known_dims(run_figure):
    result = run_figure("fig9")
    by_distribution = {}
    for row in result.rows:
        by_distribution.setdefault(row["distribution"], []).append(row)
    for rows in by_distribution.values():
        for row in rows:
            assert row["ParallelSL"] <= row["ParallelDSet"] <= row["Serial"]
        # ParallelSL's round count does not grow with |AK|.
        sl = [row["ParallelSL"] for row in rows]
        assert sl[-1] <= sl[0] * 1.5
